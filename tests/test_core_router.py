"""End-to-end tests of the assembled Router: forwarding, extension
installation, the exceptional path through the hierarchy, and
robustness/isolation behaviour."""

import pytest

from repro import ALL, Router, RouterConfig, Where
from repro.core.forwarders import (
    port_filter,
    syn_monitor,
    tcp_proxy,
    tcp_splicer,
    wavelet_dropper,
)
from repro.net.ip import record_route_option
from repro.net.packet import FlowKey, make_tcp_packet, make_udp_like_packet
from repro.net.traffic import flow_stream, syn_flood, take, uniform_flood


def booted_router(**config_kwargs) -> Router:
    router = Router(RouterConfig(**config_kwargs)) if config_kwargs else Router()
    for port in range(10):
        router.add_route(f"10.{port}.0.0", 16, port)
    return router


def warm(router, packets):
    router.warm_route_cache([p.ip.dst for p in packets])


def test_basic_forwarding_to_correct_ports():
    router = booted_router()
    packets = take(uniform_flood(24, num_ports=8), 24)
    warm(router, packets)
    router.inject(9, uniform_flood(24, num_ports=8))
    router.run(2_500_000)
    for port in range(8):
        out = router.transmitted(port)
        assert len(out) == 3, f"port {port} got {len(out)}"
        assert all(p.meta["out_port"] == port for p in out)


def test_minimal_ip_applied_on_fast_path():
    """The default general forwarder decrements TTL and rewrites MACs."""
    router = booted_router()
    packets = take(uniform_flood(8, num_ports=4), 8)
    warm(router, packets)
    router.inject(9, uniform_flood(8, num_ports=4))
    router.run(1_500_000)
    out = router.transmitted()
    assert out
    assert all(p.ip.ttl == 63 for p in out)  # one hop
    from repro.net import MACAddress

    for p in out:
        assert p.eth.src == MACAddress.for_port(p.meta["out_port"])


@pytest.mark.slow
def test_route_cache_miss_heals_through_strongarm():
    """Cold-cache packets climb to the StrongARM (CPE lookup), are
    re-queued, and still come out the right port."""
    router = booted_router()
    router.inject(9, uniform_flood(6, num_ports=3))  # cold cache
    router.run(2_500_000)
    stats = router.stats()
    assert stats["exceptional"] == 6
    assert stats["sa_local_processed"] >= 6
    out = router.transmitted()
    assert len(out) == 6
    # Subsequent identical traffic hits the cache (no new exceptionals).
    router.inject(8, uniform_flood(6, num_ports=3))
    router.run(2_500_000)
    assert router.stats()["exceptional"] == 6
    assert len(router.transmitted()) == 12


def test_ip_options_take_full_ip_path():
    router = booted_router()
    exotic = make_udp_like_packet(
        "172.16.0.1", "10.2.0.5", options=record_route_option()
    )
    plain = take(uniform_flood(4, num_ports=2), 4)
    warm(router, plain + [exotic])
    router.inject(9, iter([exotic] + plain))
    router.run(2_500_000)
    assert router.stats()["exceptional"] == 1
    processed = [p for p in router.transmitted() if p.meta.get("full_ip")]
    assert len(processed) == 1
    assert processed[0].ip.options[2] == record_route_option()[2] + 4


def test_install_general_syn_monitor_counts():
    router = booted_router()
    fid = router.install(ALL, syn_monitor())
    packets = take(syn_flood(15, out_port=2), 15)
    warm(router, packets)
    router.inject(9, syn_flood(15, out_port=2))
    router.run(2_500_000)
    assert router.getdata(fid)["syn_count"] == 15


@pytest.mark.slow
def test_install_per_flow_splicer_patches_only_its_flow():
    router = booted_router()
    from repro.net.addresses import IPv4Address

    key = FlowKey(IPv4Address("192.168.1.2"), 5001, IPv4Address("10.1.0.1"), 80)
    fid = router.install(key, tcp_splicer())
    router.setdata(fid, {"spliced": True, "seq_delta": 5000})

    spliced_stream = take(flow_stream(5, out_port=1, payload_len=10, start_seq=100), 5)
    other_stream = take(
        flow_stream(5, src="192.168.9.9", src_port=777, out_port=2, payload_len=10, start_seq=100), 5
    )
    warm(router, spliced_stream + other_stream)
    router.inject(9, iter(spliced_stream))
    router.inject(8, iter(other_stream))
    router.run(3_000_000)
    spliced_out = router.transmitted(1)
    other_out = router.transmitted(2)
    assert len(spliced_out) == 5 and len(other_out) == 5
    assert {p.tcp.seq for p in spliced_out} == {5100 + i * 10 for i in range(5)}
    assert {p.tcp.seq for p in other_out} == {100 + i * 10 for i in range(5)}
    assert router.getdata(fid)["patched"] == 5


def test_port_filter_drops_in_data_plane():
    router = booted_router()
    router.install(ALL, port_filter([(80, 80)]))
    web = take(flow_stream(4, out_port=1, dst_port=80, payload_len=6), 4)
    ssh = take(flow_stream(4, out_port=1, dst_port=22, payload_len=6, src_port=9), 4)
    warm(router, web + ssh)
    router.inject(9, iter(web + ssh))
    router.run(2_500_000)
    assert router.stats()["vrp_dropped"] == 4
    out = router.transmitted(1)
    assert len(out) == 4
    assert all(p.tcp.dst_port == 22 for p in out)


@pytest.mark.slow
def test_pentium_bound_flow_goes_up_and_comes_back():
    router = booted_router()
    from repro.net.addresses import IPv4Address

    key = FlowKey(IPv4Address("192.168.1.2"), 5001, IPv4Address("10.1.0.1"), 80)
    proxy = tcp_proxy()
    proxy.expected_pps = 1000
    router.install(key, proxy)
    stream = take(flow_stream(6, out_port=1, payload_len=10), 6)
    warm(router, stream)
    router.inject(9, iter(stream))
    router.run(4_000_000)
    stats = router.stats()
    assert stats["sa_bridged"] == 6
    assert stats["pentium_processed"] == 6
    assert len(router.transmitted(1)) == 6  # returned and forwarded


def test_admission_rejects_oversized_extension():
    from repro import AdmissionError, ForwarderSpec, VRPProgram
    from repro.core.vrp import RegOps

    router = booted_router()
    monster = ForwarderSpec(
        name="monster",
        where=Where.ME,
        program=VRPProgram("monster", [RegOps(300)]),
    )
    with pytest.raises(AdmissionError):
        router.install(ALL, monster)


@pytest.mark.slow
def test_remove_stops_forwarder():
    router = booted_router()
    fid = router.install(ALL, syn_monitor())
    first = take(syn_flood(5, out_port=1, seed=10), 5)
    warm(router, first)
    router.inject(9, iter(first))
    router.run(2_000_000)
    assert router.getdata(fid)["syn_count"] == 5
    router.remove(fid)
    with pytest.raises(KeyError):
        router.getdata(fid)
    router.inject(8, syn_flood(5, out_port=1, seed=11))
    router.run(2_000_000)  # must not crash; monitor gone


def test_wavelet_control_loop_via_setdata():
    """The control half adjusts the cutoff; the data half obeys."""
    router = booted_router()
    from repro.net.addresses import IPv4Address

    key = FlowKey(IPv4Address("192.168.1.2"), 5001, IPv4Address("10.1.0.1"), 80)
    fid = router.install(key, wavelet_dropper())
    router.setdata(fid, {"cutoff": 1})

    def layered(count):
        for i in range(count):
            packet = make_tcp_packet("192.168.1.2", "10.1.0.1", 5001, 80, payload=b"v")
            packet.ip.tos = (i % 4) << 4  # layers 0..3
            yield packet

    stream = take(layered(8), 8)
    warm(router, stream)
    router.inject(9, iter(stream))
    router.run(2_500_000)
    data = router.getdata(fid)
    assert data["forwarded"] == 4  # layers 0,1
    assert data["dropped"] == 4    # layers 2,3
    assert len(router.transmitted(1)) == 4


def test_bad_checksum_dropped_by_classifier():
    router = booted_router()
    good = take(uniform_flood(3, num_ports=1), 3)
    warm(router, good)
    bad = make_tcp_packet("1.2.3.4", "10.0.0.9")
    bad.ip.packed()
    bad.ip.checksum ^= 0x0F0F

    # Deliver via raw port injection so the corrupt checksum survives.

    router.inject(9, iter(good))
    router.run(500_000)
    # Hand-deliver the corrupted frame (to_bytes would fix the checksum).
    eth = bad.eth.packed()
    ip_bytes = bad.ip.packed(fill_checksum=False)
    frame = eth + ip_bytes + bad.tcp.packed() + b"\x00" * 10
    router.ports[9].deliver(bad, frame)
    router.run(2_000_000)
    assert router.stats()["classifier_failures"] == 1
    assert len(router.transmitted()) == 3  # only the good ones


def test_router_with_bidirectional_lookup_backend():
    """The lookup backend is selectable per router; forwarding through
    the exceptional path must behave identically on the alternate one."""
    from repro.net.routing import BidirectionalTable

    router = booted_router(lookup_backend="bidirectional")
    assert isinstance(router.routing_table, BidirectionalTable)
    packets = take(uniform_flood(12, num_ports=4), 12)
    warm(router, packets)
    router.inject(9, uniform_flood(12, num_ports=4))
    router.run(2_000_000)
    for port in range(4):
        out = router.transmitted(port)
        assert len(out) == 3
        assert all(p.meta["out_port"] == port for p in out)


def test_router_rejects_unknown_lookup_backend():
    with pytest.raises(ValueError):
        Router(RouterConfig(lookup_backend="quantum"))
