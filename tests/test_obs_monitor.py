"""The health watchdog: rule boundaries, incident determinism, CLI.

Each alert rule is unit-tested on synthesized :class:`HealthSample`
state at its exact fire/no-fire boundary, then the integrated monitor is
exercised end to end: green on the healthy scenarios, red on the forced
``overload`` scenario (CLI exits non-zero), and the incident log is
bit-identical across both schedulers.
"""

import json

import pytest

from repro.obs.monitor import (
    GREEN,
    RED,
    YELLOW,
    HealthMonitor,
    HealthSample,
    PCISaturationRule,
    QueueOverflowRule,
    TraceTruncationRule,
    VRPBudgetRule,
    WFQFairnessRule,
    default_rules,
    monitor_scenario,
)

# ---------------------------------------------------------------------------
# Rule boundaries (synthesized samples)
# ---------------------------------------------------------------------------


class TestVRPBudgetRule:
    rule = VRPBudgetRule()

    def sample(self, cycles):
        return HealthSample(vrp_cycles=cycles, vrp_sram_transfers=0,
                            vrp_hashes=0, budget_cycles=240)

    def test_no_vrp_is_green_admission_controlled(self):
        result = self.rule.evaluate(HealthSample(vrp_cycles=None))
        assert result.level == GREEN
        assert "admission" in result.detail

    def test_at_budget_is_not_red(self):
        # Exactly on budget still fits: ratio == 1.0 must not fire red.
        result = self.rule.evaluate(self.sample(240))
        assert result.level == YELLOW

    def test_one_cycle_over_budget_is_red(self):
        assert self.rule.evaluate(self.sample(241)).level == RED

    def test_under_headroom_is_green(self):
        assert self.rule.evaluate(self.sample(216)).level == GREEN  # 0.9x
        assert self.rule.evaluate(self.sample(217)).level == YELLOW

    def test_sram_axis_fires_independently(self):
        sample = HealthSample(vrp_cycles=10, vrp_sram_transfers=25,
                              vrp_hashes=0, budget_sram_transfers=24)
        result = self.rule.evaluate(sample)
        assert result.level == RED and "sram" in result.detail

    def test_hash_axis_fires_independently(self):
        sample = HealthSample(vrp_cycles=10, vrp_sram_transfers=0,
                              vrp_hashes=4, budget_hashes=3)
        assert self.rule.evaluate(sample).level == RED

    def test_paper_ref_names_section(self):
        assert "4.3" in self.rule.paper_ref


class TestQueueOverflowRule:
    rule = QueueOverflowRule()

    def test_no_drops_empty_queues_is_green(self):
        sample = HealthSample(input_mps=1000, queue_drops=0)
        assert self.rule.evaluate(sample).level == GREEN

    def test_drop_rate_at_threshold_is_red(self):
        sample = HealthSample(input_mps=1000, queue_drops=10)  # exactly 1%
        assert self.rule.evaluate(sample).level == RED

    def test_drop_rate_below_threshold_is_yellow(self):
        sample = HealthSample(input_mps=1000, queue_drops=9)  # 0.9%
        assert self.rule.evaluate(sample).level == YELLOW

    def test_near_full_queue_without_drops_is_yellow(self):
        sample = HealthSample(input_mps=1000, queue_drops=0,
                              max_queue_depth_fraction=0.9)
        result = self.rule.evaluate(sample)
        assert result.level == YELLOW and "capacity" in result.detail

    def test_below_depth_threshold_is_green(self):
        sample = HealthSample(input_mps=1000, queue_drops=0,
                              max_queue_depth_fraction=0.89)
        assert self.rule.evaluate(sample).level == GREEN


class TestPCISaturationRule:
    rule = PCISaturationRule()

    def test_no_pci_is_green(self):
        result = self.rule.evaluate(HealthSample(pci_utilization=None))
        assert result.level == GREEN and result.value is None

    def test_at_red_threshold_fires(self):
        assert self.rule.evaluate(HealthSample(pci_utilization=0.95)).level == RED

    def test_just_below_red_is_yellow(self):
        assert self.rule.evaluate(HealthSample(pci_utilization=0.94)).level == YELLOW

    def test_at_yellow_threshold(self):
        assert self.rule.evaluate(HealthSample(pci_utilization=0.80)).level == YELLOW
        assert self.rule.evaluate(HealthSample(pci_utilization=0.79)).level == GREEN

    def test_full_pentium_queue_yellows_even_on_idle_bus(self):
        sample = HealthSample(pci_utilization=0.1, pentium_queue_occupancy=0.9)
        result = self.rule.evaluate(sample)
        assert result.level == YELLOW and "I2O" in result.detail


class TestWFQFairnessRule:
    rule = WFQFairnessRule()

    def sample(self, a_packets, b_packets, a_weight=3.0, b_weight=1.0):
        return HealthSample(wfq_classes={
            "a": (a_weight, a_packets), "b": (b_weight, b_packets),
        })

    def test_no_wfq_is_green(self):
        assert self.rule.evaluate(HealthSample(wfq_classes=None)).level == GREEN

    def test_too_few_packets_not_judged(self):
        result = self.rule.evaluate(self.sample(30, 10))
        assert result.level == GREEN and "not judged" in result.detail

    def test_fair_shares_are_green(self):
        # 3:1 weights, 3:1 service -- zero deviation.
        assert self.rule.evaluate(self.sample(300, 100)).level == GREEN

    def test_deviation_at_red_threshold_fires(self):
        # b expects 25% but gets 12.5% -> deviation exactly 0.5.
        result = self.rule.evaluate(self.sample(700, 100))
        assert result.level == RED
        assert result.value == pytest.approx(0.5)

    def test_deviation_between_yellow_and_red_is_yellow(self):
        # Equal weights, b gets 3/8 instead of 1/2 -> deviation exactly
        # 0.25 (binary-exact, so the >= comparison is unambiguous).
        result = self.rule.evaluate(
            self.sample(320, 192, a_weight=1.0, b_weight=1.0)
        )
        assert result.level == YELLOW
        assert result.value == pytest.approx(0.25)

    def test_deviation_below_yellow_is_green(self):
        # Equal weights, b gets 7/16 instead of 1/2 -> deviation 0.125.
        result = self.rule.evaluate(
            self.sample(288, 224, a_weight=1.0, b_weight=1.0)
        )
        assert result.level == GREEN
        assert result.value == pytest.approx(0.125)


class TestTraceTruncationRule:
    rule = TraceTruncationRule()

    def test_intact_ring_is_green(self):
        assert self.rule.evaluate(HealthSample(dropped_events=0)).level == GREEN

    def test_any_eviction_is_yellow_never_red(self):
        result = self.rule.evaluate(HealthSample(dropped_events=1))
        assert result.level == YELLOW


# ---------------------------------------------------------------------------
# The integrated monitor
# ---------------------------------------------------------------------------


def test_default_rules_cover_all_watchdog_dimensions():
    names = {rule.name for rule in default_rules()}
    assert names == {"vrp-budget", "queue-overflow", "pci-saturation",
                     "wfq-fairness", "trace-truncation"}


def test_monitor_scenario_healthy_router_is_green():
    result = monitor_scenario("router", window=60_000, warmup=15_000)
    assert result.exit_code() == 0
    assert result.monitor.worst_level == GREEN
    assert result.monitor.evaluations >= 6
    assert result.incidents == []
    # All five rules appear in the final verdict and the rendered table.
    table = result.monitor.health_table()
    for rule in default_rules():
        assert rule.name in table
    doc = json.loads(result.to_json())
    assert doc["scenario"] == "router" and len(doc["results"]) == 5


def test_monitor_scenario_overload_goes_red():
    """The forced-red path: a 40-block VRP is statically over the
    section 4.3 budget, so the watchdog must fire and the CLI exit
    non-zero."""
    result = monitor_scenario("overload", window=40_000, warmup=10_000)
    assert result.exit_code() == 1
    by_rule = {r.rule: r for r in result.results}
    assert by_rule["vrp-budget"].level == RED
    assert any(i["rule"] == "vrp-budget" and i["to"] == RED
               for i in result.incidents)


def test_incident_log_identical_across_schedulers():
    """Evaluations run at fixed cycles, so the structured incident log --
    cycles, rules, transitions, values -- is deterministic across both
    event-queue implementations."""

    def run(scheduler):
        result = monitor_scenario("overload", window=40_000, warmup=10_000,
                                  scheduler=scheduler)
        return (result.incidents,
                [r.to_dict() for r in result.results],
                result.monitor.evaluations)

    assert run("calendar") == run("heap")


def test_monitor_evaluate_uses_delta_windows():
    """Counters are windowed per evaluation, not cumulative: a burst of
    drops in window 1 must not keep the rule red in a clean window 2."""
    from repro.ixp.chip import ChipConfig, IXP1200
    from repro.obs.recorder import Recorder

    chip = IXP1200(ChipConfig())
    recorder = chip.enable_observability(Recorder())
    monitor = HealthMonitor(chip, recorder)
    chip.counters["queue_drops"] += 50
    chip.counters["input_mps"] += 100
    assert {r.rule: r.level for r in monitor.evaluate()}["queue-overflow"] == RED
    chip.counters["input_mps"] += 1000
    results = {r.rule: r.level for r in monitor.evaluate()}
    assert results["queue-overflow"] == GREEN
    # The red->green transition was logged as an incident.
    assert [i["to"] for i in monitor.incidents
            if i["rule"] == "queue-overflow"] == [RED, GREEN]


def test_router_health_monitor_convenience():
    from repro.core.router import Router, RouterConfig

    router = Router(RouterConfig(num_ports=4))
    monitor = router.health_monitor()
    assert router.chip.recorder.enabled  # observability auto-enabled
    results = monitor.evaluate()
    assert {r.rule for r in results} == {rule.name for rule in default_rules()}
    assert monitor.exit_code() == 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_monitor_healthy_exits_zero(capsys):
    from repro.cli import main

    rc = main(["monitor", "fastpath", "--window", "30000",
               "--warmup", "10000", "--quiet"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "router health" in out and "overall: GREEN" in out
    for rule in default_rules():
        assert rule.name in out


def test_cli_monitor_overload_exits_nonzero(tmp_path, capsys):
    from repro.cli import main

    incidents = tmp_path / "incidents.json"
    rc = main(["monitor", "overload", "--window", "30000", "--warmup",
               "10000", "--quiet", "--incidents-out", str(incidents)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "overall: RED" in out
    doc = json.loads(incidents.read_text())
    assert doc["scenario"] == "overload"
    assert any(i["to"] == "red" for i in doc["incidents"])


def test_cli_profile_format_flags(tmp_path, capsys):
    from repro.cli import main
    from repro.obs.analysis import validate_chrome_trace

    chrome = tmp_path / "t.chrome.json"
    rc = main(["profile", "fastpath", "--window", "20000",
               "--format", "chrome", "--trace-out", str(chrome)])
    assert rc == 0
    assert validate_chrome_trace(json.loads(chrome.read_text())) == []

    csv_out = tmp_path / "t.csv"
    rc = main(["profile", "fastpath", "--window", "20000",
               "--format", "csv", "--trace-out", str(csv_out)])
    assert rc == 0
    assert csv_out.read_text().splitlines()[0] == \
        "cycle,component,event,packet_id,detail"
    capsys.readouterr()


def test_cli_list_mentions_profile_and_monitor_scenarios(capsys):
    from repro.cli import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "monitor" in out and "profile" in out
    for scenario in ("fastpath", "vrp", "router", "overload"):
        assert scenario in out
