"""Tests for Ethernet, IPv4 and TCP header codecs."""

import pytest

from repro.net import (
    EthernetHeader,
    IPv4Address,
    IPv4Header,
    MACAddress,
    TCP_ACK,
    TCP_SYN,
    TCPHeader,
    checksum16,
)
from repro.net.ethernet import max_frame_rate, wire_bits
from repro.net.ip import record_route_option


def test_ethernet_roundtrip():
    header = EthernetHeader(MACAddress.for_port(1), MACAddress.for_port(2))
    assert EthernetHeader.parse(header.packed()) == header


def test_ethernet_parse_truncated():
    with pytest.raises(ValueError):
        EthernetHeader.parse(b"\x00" * 10)


def test_wire_rate_matches_ieee_numbers():
    # The paper: theoretical max of 148.8 Kpps for 64-byte frames at 100 Mbps.
    assert max_frame_rate(100e6, 64) == pytest.approx(148_809.5, rel=1e-3)
    assert wire_bits(64) == (64 + 20) * 8


def test_checksum16_known_vector():
    # RFC 1071 example data.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert checksum16(data) == 0x220D


def test_checksum16_odd_length():
    assert checksum16(b"\xFF") == (~0xFF00) & 0xFFFF


def test_ipv4_roundtrip_and_validate():
    header = IPv4Header(IPv4Address("1.2.3.4"), IPv4Address("5.6.7.8"), total_length=40, ttl=9)
    data = header.packed()
    parsed = IPv4Header.parse(data)
    assert parsed.src == header.src
    assert parsed.dst == header.dst
    assert parsed.ttl == 9
    ok, reason = parsed.validate()
    assert ok, reason


def test_ipv4_checksum_detects_corruption():
    header = IPv4Header(IPv4Address("1.2.3.4"), IPv4Address("5.6.7.8"))
    data = bytearray(header.packed())
    data[8] ^= 0xFF  # corrupt TTL
    ok, reason = IPv4Header.parse(bytes(data)).validate()
    assert not ok
    assert reason == "bad-checksum"


def test_ipv4_ttl_decrement_and_expiry():
    header = IPv4Header(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"), ttl=2)
    assert header.decrement_ttl()
    assert header.ttl == 1
    assert not header.decrement_ttl()  # would hit zero: drop


def test_ipv4_options_make_header_longer():
    options = record_route_option()
    header = IPv4Header(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"), options=options)
    assert header.has_options
    assert header.header_length == 20 + len(options)
    parsed = IPv4Header.parse(header.packed())
    assert parsed.options == options
    assert 7 in parsed.option_kinds()  # Record Route


def test_ipv4_rejects_unaligned_options():
    with pytest.raises(ValueError):
        IPv4Header(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"), options=b"\x01")


def test_ipv4_validate_length_vs_frame():
    header = IPv4Header(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"), total_length=100)
    ok, reason = IPv4Header.parse(header.packed()).validate(frame_payload_len=50)
    assert not ok
    assert reason == "length-exceeds-frame"


def test_ipv4_parse_rejects_garbage():
    with pytest.raises(ValueError):
        IPv4Header.parse(b"\x00" * 20)  # version 0
    with pytest.raises(ValueError):
        IPv4Header.parse(b"\x41" + b"\x00" * 19)  # IHL 1


def test_tcp_roundtrip():
    header = TCPHeader(5001, 80, seq=1000, ack=2000, flags=TCP_SYN | TCP_ACK)
    parsed = TCPHeader.parse(header.packed())
    assert parsed.src_port == 5001
    assert parsed.dst_port == 80
    assert parsed.seq == 1000
    assert parsed.ack == 2000
    assert "SYN" in parsed.flag_names() and "ACK" in parsed.flag_names()


def test_tcp_checksum_roundtrip():
    src, dst = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")
    header = TCPHeader(1234, 80, seq=7)
    wire = header.packed_with_checksum(src, dst, b"hello")
    parsed = TCPHeader.parse(wire)
    assert parsed.verify_checksum(src, dst, b"hello")
    assert not parsed.verify_checksum(src, dst, b"Hello")


def test_tcp_rejects_bad_ports():
    with pytest.raises(ValueError):
        TCPHeader(70000, 80)


def test_tcp_seq_wraps_mod_2_32():
    header = TCPHeader(1, 2, seq=(1 << 32) + 5)
    assert header.seq == 5
