"""Coverage for remaining branches: switch flooding, lazy body fetch,
MAC transmit pacing, and spare-cycle accounting."""


from repro.engine import Simulator
from repro.hosts.pci import I2OMessage, I2OQueuePair, PCIBus
from repro.hosts.pentium import PentiumHost
from repro.net.mac import MACPort, PortSpeed
from repro.net.mp import segment_packet
from repro.net.packet import make_tcp_packet


def test_switch_drops_unknown_destination():
    from repro.core.cluster import EthernetSwitch, member_mac

    sim = Simulator()
    switch = EthernetSwitch(sim, poll_cycles=50)
    port = MACPort(sim, 0, PortSpeed.GBPS_1)
    switch.attach(member_mac(0), port)
    stray = make_tcp_packet("1.1.1.1", "2.2.2.2")  # dst MAC not attached
    for mp in segment_packet(stray):
        port.put_mp(mp)
    sim.run(until=50_000)
    assert switch.flooded_drops == 1
    assert switch.forwarded == 0


def test_mac_tx_pacing_blocks_until_wire_free():
    sim = Simulator()
    port = MACPort(sim, 0, PortSpeed.MBPS_100)
    assert port.tx_ready(0)
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2")
    for mp in segment_packet(packet):
        port.put_mp(mp)
    # A 64-byte frame occupies the 100 Mbps wire for 1344 cycles.
    assert not port.tx_ready(10)
    assert port.tx_ready(1400)


def test_pentium_lazy_body_fetch_costs_bus_time():
    """fetch_body=True moves the body; False moves only the eager 72 B."""

    def run(fetch_body):
        sim = Simulator()
        bus = PCIBus(sim)
        rx, tx = I2OQueuePair(name="rx"), I2OQueuePair(name="tx")
        pentium = PentiumHost(sim, rx, tx, bus, fetch_body=fetch_body)
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", payload=b"x" * 1000)
        rx.try_send(I2OMessage(packet, 72, 1000, {}))
        sim.run(until=50_000)
        return pentium.processed, bus.bytes_moved

    processed_lazy, lazy_bytes = run(False)
    processed_eager, eager_bytes = run(True)
    assert processed_lazy == processed_eager == 1
    assert lazy_bytes == 2 * 72
    assert eager_bytes == 72 + 1000 + 72 + 1000


def test_pentium_spare_cycles_undefined_when_idle():
    # An idle window used to report float("inf"), which leaks as invalid
    # JSON (``Infinity``) from exported reports; None marks it undefined.
    sim = Simulator()
    pentium = PentiumHost(sim, I2OQueuePair(), I2OQueuePair(), PCIBus(sim))
    pentium.start_window()
    sim.run(until=10_000)
    assert pentium.spare_cycles_per_packet(10_000) is None


def test_pentium_drop_action_consumes_packet():
    sim = Simulator()
    rx, tx = I2OQueuePair(), I2OQueuePair()
    pentium = PentiumHost(sim, rx, tx, PCIBus(sim))
    pentium.register("blackhole", 50, lambda packet: False)
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2")
    packet.meta["pentium_forwarder"] = "blackhole"
    rx.try_send(I2OMessage(packet, 72, 0, dict(packet.meta)))
    sim.run(until=20_000)
    assert pentium.processed == 1
    assert pentium.returned == 0
    assert tx.occupancy == 0


def test_trace_replay_time_scale():
    from repro import Router
    from repro.net.trace import TraceRecord, replay
    from repro.net.traffic import take, uniform_flood

    router = Router()
    router.add_route("10.0.0.0", 16, 0)
    packets = take(uniform_flood(2, num_ports=1), 2)
    router.warm_route_cache([p.ip.dst for p in packets])
    records = [
        TraceRecord(timestamp=100_000 * i, port=3, frame=p.to_bytes())
        for i, p in enumerate(packets)
    ]
    replay(router, records, time_scale=0.1)  # 10x faster
    router.run(400_000)
    out = router.transmitted()
    assert len(out) == 2
    arrivals = sorted(p.meta["t_arrived"] for p in out)
    assert arrivals[1] - arrivals[0] < 20_000  # compressed from 100k


def test_signal_fire_returns_woken_count():
    sim = Simulator()
    signal = sim.signal()

    def waiter():
        yield signal

    sim.spawn(waiter())
    sim.spawn(waiter())
    sim.run(max_events=4)
    assert signal.fire() == 2
    assert signal.fire() == 0
