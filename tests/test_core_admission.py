"""Tests for admission control (section 4.6)."""

import pytest

from repro.core.admission import AdmissionControl, AdmissionError, PentiumCapacity, StrongARMCapacity
from repro.core.classifier import FlowTable
from repro.core.forwarder import ALL, ForwarderSpec, Where
from repro.core.forwarders import minimal_ip, syn_monitor, tcp_splicer
from repro.core.vrp import RegOps, SramRead, VRPBudget, VRPProgram
from repro.ixp.istore import InstructionStore
from repro.net.addresses import IPv4Address
from repro.net.packet import FlowKey


def flow_key(i=1):
    return FlowKey(IPv4Address(f"1.1.1.{i}"), 1000 + i, IPv4Address("2.2.2.2"), 80)


def make_spec(name, reg=50, sram_words=2, where=Where.ME, **kw):
    return ForwarderSpec(
        name=name,
        where=where,
        program=VRPProgram(name, [RegOps(reg), SramRead(sram_words)]),
        **kw,
    )


def test_table5_forwarders_all_admitted_as_general():
    admission = AdmissionControl()
    table = FlowTable()
    # The defaults: minimal IP plus small monitors all fit serially...
    for spec in (minimal_ip(), syn_monitor()):
        admission.check(ALL, spec, table)
        table.add(ALL, spec)


def test_general_forwarders_accumulate_serially():
    """General forwarders run in series, so their combined cost is what
    must fit -- eventually one is rejected."""
    admission = AdmissionControl()
    table = FlowTable()
    installed = 0
    with pytest.raises(AdmissionError):
        for i in range(10):
            spec = make_spec(f"g{i}", reg=60)
            admission.check(ALL, spec, table)
            table.add(ALL, spec)
            installed += 1
    # The classifier costs 56 cycles; three 61-cycle forwarders fit
    # within 240, the fourth cannot.
    assert installed == 3


def test_per_flow_forwarders_count_in_parallel():
    """Only one per-flow forwarder applies per packet, so many can be
    installed as long as each fits with the generals."""
    admission = AdmissionControl()
    table = FlowTable()
    for i in range(20):
        spec = make_spec(f"pf{i}", reg=120)
        admission.check(flow_key(i), spec, table)
        table.add(flow_key(i), spec)
    # Serially these would be 2400 cycles; in parallel they all fit.
    assert len(table.per_flow_entries) == 20


def test_general_check_includes_worst_per_flow():
    admission = AdmissionControl()
    table = FlowTable()
    table.add(flow_key(1), make_spec("pf", reg=150))
    # 150 (worst per-flow) + 56 (classifier) + this general must fit 240.
    admission.check(ALL, make_spec("ok", reg=20), table)
    with pytest.raises(AdmissionError):
        admission.check(ALL, make_spec("too-big", reg=60), table)


def test_istore_space_enforced():
    admission = AdmissionControl()
    table = FlowTable()
    store = InstructionStore()
    store.install_general("hog", 630)
    spec = tcp_splicer()  # needs ~50 slots
    with pytest.raises(AdmissionError) as err:
        admission.check(flow_key(), spec, table, istores=[store])
    assert "ISTORE" in str(err.value)


def test_registers_enforced():
    admission = AdmissionControl()
    table = FlowTable()
    spec = ForwarderSpec(
        name="reg-hog", where=Where.ME,
        program=VRPProgram("reg-hog", [RegOps(10)], registers_needed=9),
    )
    with pytest.raises(AdmissionError):
        admission.check(ALL, spec, table)


def test_strongarm_rejected_when_reserved_for_bridging():
    admission = AdmissionControl(strongarm=StrongARMCapacity(local_forwarder_fraction=0.0))
    spec = ForwarderSpec(name="sa-f", where=Where.SA, cycles=100)
    with pytest.raises(AdmissionError) as err:
        admission.check(flow_key(), spec, FlowTable())
    assert "bridging" in str(err.value)


def test_strongarm_capacity_check():
    admission = AdmissionControl(strongarm=StrongARMCapacity(local_forwarder_fraction=0.1))
    ok = ForwarderSpec(name="light", where=Where.SA, cycles=100, expected_pps=10e3)
    admission.check(flow_key(1), ok, FlowTable())
    hog = ForwarderSpec(name="hog", where=Where.SA, cycles=5000, expected_pps=100e3)
    with pytest.raises(AdmissionError):
        admission.check(flow_key(2), hog, FlowTable())


def test_pentium_packet_rate_cap():
    admission = AdmissionControl(pentium=PentiumCapacity(max_pps=534e3))
    table = FlowTable()
    ok = ForwarderSpec(name="a", where=Where.PE, cycles=100, expected_pps=400e3)
    admission.check(flow_key(1), ok, table)
    table.add(flow_key(1), ok)
    over = ForwarderSpec(name="b", where=Where.PE, cycles=100, expected_pps=200e3)
    with pytest.raises(AdmissionError) as err:
        admission.check(flow_key(2), over, table)
    assert "packet rate" in str(err.value)


def test_pentium_cycle_rate_cap():
    admission = AdmissionControl(pentium=PentiumCapacity(clock_hz=733e6, control_reserve=0.2))
    table = FlowTable()
    # 300 Kpps x 1510 cycles = 453 Mcycles/s < 586 M available: admitted.
    ok = ForwarderSpec(name="suite", where=Where.PE, cycles=1510, expected_pps=300e3)
    admission.check(flow_key(1), ok, table)
    table.add(flow_key(1), ok)
    # Another 150 Kpps x 1510 pushes past the cycle budget.
    over = ForwarderSpec(name="more", where=Where.PE, cycles=1510, expected_pps=150e3)
    with pytest.raises(AdmissionError) as err:
        admission.check(flow_key(2), over, table)
    assert "cycle rate" in str(err.value)


def test_rejections_are_recorded():
    admission = AdmissionControl()
    with pytest.raises(AdmissionError):
        admission.check(ALL, make_spec("huge", reg=500), FlowTable())
    assert len(admission.rejections) == 1
    assert "huge" in admission.rejections[0]


def test_strongarm_zero_declared_cycles_rejected():
    """Declaring zero cycles/packet would reserve nothing; admission
    must refuse to reason about the lie."""
    admission = AdmissionControl(strongarm=StrongARMCapacity(local_forwarder_fraction=0.1))
    spec = ForwarderSpec(name="free-lunch", where=Where.SA, cycles=0,
                         expected_pps=10e3)
    with pytest.raises(AdmissionError) as err:
        admission.check(flow_key(), spec, FlowTable())
    assert "positive" in str(err.value)


def test_pentium_nonpositive_declared_cycles_rejected():
    admission = AdmissionControl()
    table = FlowTable()
    for cycles in (0, -250):
        spec = ForwarderSpec(name=f"c{cycles}", where=Where.PE, cycles=cycles,
                             expected_pps=10e3)
        with pytest.raises(AdmissionError) as err:
            admission.check(flow_key(), spec, table)
        assert "positive" in str(err.value)
    # expected_cycles_per_packet is an acceptable alternative declaration.
    ok = ForwarderSpec(name="declared-alt", where=Where.PE, cycles=0,
                       expected_cycles_per_packet=200, expected_pps=10e3)
    admission.check(flow_key(), ok, table)


def test_program_exceeding_any_istore_rejected_outright():
    """A program bigger than an *empty* 650-slot ISTORE can never be
    installed; the rejection must say so even when no store is offered
    (a roomy cycle budget keeps the VRP check from masking the branch)."""
    roomy = VRPBudget(cycles=5_000, istore_slots=650)
    admission = AdmissionControl(budget=roomy)
    spec = ForwarderSpec(name="whale", where=Where.ME,
                         program=VRPProgram("whale", [RegOps(700)]))
    with pytest.raises(AdmissionError) as err:
        admission.check(flow_key(), spec, FlowTable())
    assert "can never fit" in str(err.value)


def test_istore_exhaustion_on_any_one_engine_rejects():
    """The program must fit on *every* input engine: one crowded store
    among free ones is enough to reject."""
    admission = AdmissionControl()
    crowded = InstructionStore()
    crowded.install_general("hog", 630)
    with pytest.raises(AdmissionError) as err:
        admission.check(flow_key(), tcp_splicer(), FlowTable(),
                        istores=[InstructionStore(), crowded])
    assert "free on an input engine" in str(err.value)


def test_per_flow_candidate_checked_against_serial_baseline():
    """A per-flow candidate is charged classifier + all generals + itself
    (the parallel rule exempts it only from *other* per-flow costs)."""
    admission = AdmissionControl()
    table = FlowTable()
    general = make_spec("g", reg=60)          # 61 cycles with the SRAM read
    admission.check(ALL, general, table)
    table.add(ALL, general)
    # 56 (classifier) + 61 (general) + 101 = 218 <= 240: admitted.
    admission.check(flow_key(1), make_spec("fits", reg=100), table)
    # 56 + 61 + 131 = 248 > 240: rejected despite running "in parallel"
    # with other per-flow forwarders.
    with pytest.raises(AdmissionError):
        admission.check(flow_key(2), make_spec("busts", reg=130), table)
