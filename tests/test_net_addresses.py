"""Tests for IPv4/MAC address value types."""

import pytest

from repro.net import IPv4Address, MACAddress


def test_ipv4_parse_and_format_roundtrip():
    addr = IPv4Address("192.168.1.200")
    assert str(addr) == "192.168.1.200"
    assert int(addr) == (192 << 24) | (168 << 16) | (1 << 8) | 200


def test_ipv4_from_int_and_bytes():
    addr = IPv4Address(0x0A000001)
    assert str(addr) == "10.0.0.1"
    assert IPv4Address.from_bytes(addr.packed()) == addr


def test_ipv4_copy_constructor():
    a = IPv4Address("1.2.3.4")
    assert IPv4Address(a) == a


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"])
def test_ipv4_rejects_bad_strings(bad):
    with pytest.raises(ValueError):
        IPv4Address(bad)


def test_ipv4_rejects_out_of_range_int():
    with pytest.raises(ValueError):
        IPv4Address(1 << 32)
    with pytest.raises(ValueError):
        IPv4Address(-1)


def test_ipv4_rejects_wrong_type():
    with pytest.raises(TypeError):
        IPv4Address(1.5)


def test_ipv4_prefix_bits():
    addr = IPv4Address("192.168.0.0")
    assert addr.prefix_bits(16) == (192 << 8) | 168
    assert addr.prefix_bits(0) == 0
    assert addr.prefix_bits(32) == int(addr)
    with pytest.raises(ValueError):
        addr.prefix_bits(33)


def test_ipv4_hash_and_ordering():
    a, b = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")
    assert a < b
    assert len({a, IPv4Address("10.0.0.1")}) == 1


def test_mac_parse_format_roundtrip():
    mac = MACAddress("02:00:00:00:00:07")
    assert str(mac) == "02:00:00:00:00:07"
    assert MACAddress.from_bytes(mac.packed()) == mac


def test_mac_for_port_is_deterministic_and_local():
    mac = MACAddress.for_port(3)
    assert mac == MACAddress.for_port(3)
    assert mac != MACAddress.for_port(4)
    assert mac.packed()[0] == 0x02  # locally administered


@pytest.mark.parametrize("bad", ["02:00:00:00:00", "zz:00:00:00:00:00"])
def test_mac_rejects_bad_strings(bad):
    with pytest.raises(ValueError):
        MACAddress(bad)


def test_mac_and_ipv4_hash_distinctly():
    # Same integer value must not collide across types in a dict.
    table = {IPv4Address(5): "ip", MACAddress(5): "mac"}
    assert len(table) == 2
