"""Integration tests for the StrongARM and Pentium switching paths
(sections 3.6, 3.7 / Table 4) and the pure-PC baseline."""

import pytest

from repro.hosts.baseline import PurePCRouter
from repro.hosts.harness import measure_pentium_path, measure_strongarm_path
from repro.hosts.strongarm import StrongARM
from repro.ixp.chip import ChipConfig, IXP1200
from repro.net.traffic import take, uniform_flood


def test_strongarm_polling_rate_near_526kpps():
    rate = measure_strongarm_path("polling", window=250_000)
    assert rate == pytest.approx(526e3, rel=0.10)


def test_strongarm_interrupts_significantly_slower():
    polling = measure_strongarm_path("polling", window=200_000)
    interrupts = measure_strongarm_path("interrupt", window=200_000)
    assert interrupts < 0.7 * polling


def test_strongarm_costed_forwarder_lowers_rate():
    null = measure_strongarm_path(forwarder_cycles=0, window=150_000)
    # Full IP costs 660 cycles on this level (Table 5 discussion).
    heavy = measure_strongarm_path(forwarder_cycles=660, window=150_000)
    assert heavy < 0.5 * null


def test_pentium_path_64b_matches_table4():
    m = measure_pentium_path(64, window=300_000)
    assert m.rate_pps == pytest.approx(534e3, rel=0.10)
    # ~500 spare Pentium cycles per packet, StrongARM saturated.
    assert 300 < m.pentium_spare_cycles < 700
    assert m.strongarm_spare_cycles < 150


def test_pentium_path_1500b_is_bus_bound():
    m = measure_pentium_path(1500, window=1_200_000)
    assert m.rate_pps == pytest.approx(43.6e3, rel=0.10)
    # The StrongARM has thousands of spare cycles at this rate.
    assert m.strongarm_spare_cycles > 3000


def test_hierarchy_path_capacities_ordered():
    """Path A >> paths B and C; B and C are within 2x of each other."""
    from repro.ixp.workbench import measure_system_rate

    path_a = measure_system_rate(window=100_000).output_pps
    path_b = measure_strongarm_path(window=150_000)
    path_c = measure_pentium_path(64, window=200_000).rate_pps
    assert path_a > 4 * max(path_b, path_c)
    assert 0.5 < path_b / path_c < 2.0


def test_sa_drop_forwarder_drops():
    chip = IXP1200(ChipConfig(input_contexts=0, output_contexts=0))
    sa = StrongARM(chip)
    packets = take(uniform_flood(3, num_ports=1), 3)
    from repro.ixp.buffers import BufferHandle
    from repro.ixp.queues import PacketDescriptor

    for packet in packets:
        packet.meta["sa_forwarder"] = "drop"
        chip.sa_local_queue.enqueue(
            PacketDescriptor(BufferHandle(0, 0), packet, 1, 0, 0)
        )
    chip.sim.run(until=50_000)
    assert sa.dropped_local == 3
    assert sa.local_processed == 3
    assert chip.bank.total_enqueued == 0  # nothing re-queued


def test_sa_local_forwarder_requeues_to_output():
    chip = IXP1200(ChipConfig(input_contexts=0, output_contexts=0))
    sa = StrongARM(chip)
    packet = take(uniform_flood(1, num_ports=1), 1)[0]
    packet.meta["out_port"] = 3
    from repro.ixp.buffers import BufferHandle
    from repro.ixp.queues import PacketDescriptor

    chip.sa_local_queue.enqueue(PacketDescriptor(BufferHandle(0, 0), packet, 1, 0, 0))
    chip.sim.run(until=50_000)
    assert sa.local_processed == 1
    queue = chip.bank.queues_for_port(3)[0]
    assert queue.enqueued == 1


def test_sa_rejects_bad_mode():
    chip = IXP1200(ChipConfig(input_contexts=0, output_contexts=0))
    with pytest.raises(ValueError):
        StrongARM(chip, mode="psychic")


# -- baseline -------------------------------------------------------------------


def test_pure_pc_analytic_rate_hundreds_of_kpps():
    pc = PurePCRouter()
    rate = pc.max_rate_pps(64)
    assert 200e3 < rate < 700e3


def test_pure_pc_simulated_rate_matches_analytic():
    pc = PurePCRouter()
    simulated = pc.measure_rate(uniform_flood(300, num_ports=1))
    assert simulated == pytest.approx(pc.max_rate_pps(64), rel=0.15)


def test_headline_order_of_magnitude():
    """The paper's headline: hierarchy ~3.47 Mpps vs pure PC, 'nearly an
    order of magnitude'."""
    from repro.ixp.workbench import measure_system_rate

    hierarchy = measure_system_rate(window=100_000).output_pps
    pc = PurePCRouter().max_rate_pps(64)
    assert 5 < hierarchy / pc < 15


def test_pure_pc_drops_unroutable():
    from repro.net.routing import RoutingTable

    table = RoutingTable()
    table.add("10.0.0.0", 16, 1)
    pc = PurePCRouter(routing_table=table)
    pc.measure_rate(uniform_flood(10, num_ports=8))  # most dsts unroutable
    assert pc.dropped > 0
    assert pc.forwarded + pc.dropped == 10
