"""Edge-case coverage across modules: configuration variants, boundary
conditions, and less-traveled code paths."""


from repro import Router, RouterConfig
from repro.ixp import ChipConfig, IXP1200, InputDiscipline, OutputDiscipline
from repro.net.traffic import flow_stream, take


# -- chip configuration variants --------------------------------------------------


def test_full_system_with_private_queues():
    """The I.1 + O.3 combination the paper calls "reasonable"."""
    chip = IXP1200(ChipConfig(
        input_discipline=InputDiscipline.PRIVATE,
        output_discipline=OutputDiscipline.MULTI_INDIRECT,
    ))
    m = chip.measure(window=60_000, warmup=10_000)
    assert m.output_pps > 2e6


def test_full_system_unbatched_output():
    chip = IXP1200(ChipConfig(output_discipline=OutputDiscipline.SINGLE_UNBATCHED))
    m = chip.measure(window=60_000, warmup=10_000)
    assert m.output_pps > 2e6


def test_multiqueue_router_with_priorities():
    router = Router(RouterConfig(
        output_discipline=OutputDiscipline.MULTI_INDIRECT, queues_per_port=4,
    ))
    for port in range(10):
        router.add_route(f"10.{port}.0.0", 16, port)
    packets = take(flow_stream(6, out_port=1, payload_len=6), 6)
    router.warm_route_cache([p.ip.dst for p in packets])
    for i, p in enumerate(packets):
        p.meta["queue_priority"] = i % 4
    router.inject(0, iter(packets))
    router.run(900_000)
    assert len(router.transmitted(1)) == 6
    used = [q for q in router.chip.bank.queues_for_port(1) if q.enqueued]
    assert len(used) >= 3  # several priority levels actually used


def test_router_without_pentium():
    router = Router(RouterConfig(with_pentium=False))
    router.add_route("10.1.0.0", 16, 1)
    packets = take(flow_stream(4, out_port=1, payload_len=6), 4)
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(0, iter(packets))
    router.run(800_000)
    assert len(router.transmitted(1)) == 4
    assert router.pentium is None


def test_single_port_chip():
    chip = IXP1200(ChipConfig(num_ports=1, synthetic_pattern="uniform"))
    m = chip.measure(window=60_000, warmup=10_000)
    assert m.output_pps > 0.5e6


def test_minimal_context_configuration():
    chip = IXP1200(ChipConfig(input_contexts=1, output_contexts=1))
    m = chip.measure(window=60_000, warmup=10_000)
    assert 0 < m.output_pps < 1.5e6  # one context per stage is slow


# -- packet/header boundaries -----------------------------------------------------------


def test_max_size_frame_through_router():
    from repro.net.packet import make_tcp_packet

    router = Router()
    router.add_route("10.1.0.0", 16, 1)
    big = make_tcp_packet("9.9.9.9", "10.1.0.1", payload=b"x" * 1460)  # 1518 frame
    assert big.frame_len == 1518
    router.warm_route_cache([big.ip.dst])
    router.inject(0, iter([big]))
    router.run(900_000)
    out = router.transmitted(1)
    assert len(out) == 1
    assert out[0].payload == b"x" * 1460


def test_multi_mp_packet_counts():
    """A 1518-byte frame is 24 MPs; the chip counters must agree."""
    from repro.net.packet import make_tcp_packet

    router = Router()
    router.add_route("10.1.0.0", 16, 1)
    big = make_tcp_packet("9.9.9.9", "10.1.0.1", payload=b"x" * 1460)
    router.warm_route_cache([big.ip.dst])
    router.inject(0, iter([big]))
    router.run(900_000)
    assert router.stats()["input_packets"] == 1
    assert router.stats()["input_mps"] == 24
    assert router.stats()["output_mps"] == 24


def test_zero_payload_tcp():
    from repro.net.packet import make_tcp_packet
    from repro.net.packet import Packet

    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", payload=b"")
    parsed = Packet.from_bytes(packet.to_bytes())
    assert parsed.payload == b""
    assert parsed.tcp is not None


def test_broadcast_ttl_one_hop():
    """TTL=2 survives exactly one hop, TTL=1 does not."""
    from repro.net.packet import make_tcp_packet

    router = Router()
    router.add_route("10.1.0.0", 16, 1)
    ok = make_tcp_packet("1.1.1.1", "10.1.0.1", ttl=2)
    dead = make_tcp_packet("1.1.1.2", "10.1.0.1", ttl=1)
    router.warm_route_cache([ok.ip.dst])
    router.inject(0, iter([ok, dead]))
    router.run(800_000)
    out = router.transmitted(1)
    assert len(out) == 1
    assert out[0].ip.ttl == 1


# -- scheduler / host edges ----------------------------------------------------------------


def test_pentium_scheduler_charges_flows():
    router = Router()
    router.add_route("10.1.0.0", 16, 1)
    from repro.core.forwarders import tcp_proxy
    from repro.net.packet import FlowKey
    from repro.net.addresses import IPv4Address

    proxy = tcp_proxy()
    proxy.expected_pps = 100
    key = FlowKey(IPv4Address("1.2.3.4"), 10, IPv4Address("10.1.0.1"), 80)
    router.install(key, proxy)
    packets = take(
        flow_stream(5, src="1.2.3.4", src_port=10, dst="10.1.0.1", dst_port=80, payload_len=6), 5
    )
    router.warm_route_cache([packets[0].ip.dst])
    router.inject(0, iter(packets))
    router.run(1_500_000)
    stats = router.scheduler.stats()
    assert stats["tcp-proxy"]["work_done"] > 0


def test_requeue_from_sa_drops_when_queue_full():
    from repro.ixp.buffers import BufferHandle
    from repro.ixp.queues import PacketDescriptor

    chip = IXP1200(ChipConfig(input_contexts=0, output_contexts=0, queue_capacity=1))
    queue = chip.bank.input_queue_for(0)
    chip.bank.enqueue(queue, PacketDescriptor(BufferHandle(0, 0), None, 1, 0, 0))
    before = chip.counters["queue_drops"]
    ok = chip.requeue_from_sa(PacketDescriptor(BufferHandle(0, 0), None, 1, 0, 0))
    assert not ok
    assert chip.counters["queue_drops"] == before + 1


def test_interface_remove_reinstall_cycle():
    """Install/remove/reinstall keeps the ISTORE and flow table sane."""
    from repro import ALL
    from repro.core.forwarders import syn_monitor

    router = Router()
    for __ in range(5):
        fid = router.install(ALL, syn_monitor())
        router.remove(fid)
    fid = router.install(ALL, syn_monitor())
    assert router.getdata(fid) == {}
    store = router.chip.istores[0]
    # Only minimal-ip + one syn-monitor remain installed.
    assert len(store.installed()) == 2


def test_route_cache_generation_counter_wraps_many_updates():
    router = Router()
    for i in range(50):
        router.add_route(f"10.{i % 10}.0.0", 16, i % 10)
    from repro.net import IPv4Address

    router.warm_route_cache(["10.1.0.1"])
    assert router.chip.route_cache.lookup(IPv4Address("10.1.0.1")) is not None
