"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_default(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "robustness" in out


def test_list_command(capsys):
    assert main(["list"]) == 0
    assert "experiments:" in capsys.readouterr().out


def test_envelope(capsys):
    assert main(["envelope"]) == 0
    out = capsys.readouterr().out
    assert "register cycles/packet" in out
    assert "280" in out
    assert "4.29" in out


def test_plan(capsys):
    assert main(["plan", "100", "100", "100", "100"]) == 0
    out = capsys.readouterr().out
    assert "line rate" in out
    assert "port 3" in out


def test_plan_rejects_odd_speed():
    with pytest.raises(SystemExit):
        main(["plan", "10"])


def test_table1_small_window(capsys):
    assert main(["table1", "--window", "40000"]) == 0
    out = capsys.readouterr().out
    assert "I.1" in out and "O.3" in out


def test_paths_small_window(capsys):
    assert main(["paths", "--window", "60000"]) == 0
    out = capsys.readouterr().out
    assert "MicroEngines" in out and "Pentium" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
