"""Control-plane survivability: hello-based failure detection, reliable
flooding under loss/corruption, restore handshakes, crash/restart, and
the control-plane health rule.

These tests pin the tentpole behaviors: no oracle tells a router its
link died -- each endpoint must miss hellos past the dead interval and
originate its own withdrawal; LSAs cross real (lossy, faultable) links
with per-neighbor ack/retransmit; a restored link carries no traffic
until the two-way handshake completes."""

from repro import Router
from repro.control.linkstate import ADJ_FULL
from repro.obs import export
from repro.obs.monitor import ControlPlaneRule, HealthSample
from repro.topo.network import Topology


def ring_with_primary(seed=7, **topo_kw):
    """The scenario ring: r1-r2-r3 primary (cost 2), r1-r4-r3 alternate
    (cost 4), hosts h1 at r1 and h3 at r3."""
    topo = Topology(seed=seed, **topo_kw)
    for name in ("r1", "r2", "r3", "r4"):
        topo.add_router(name)
    topo.connect("r1", "r2", cost=1)
    topo.connect("r2", "r3", cost=1)
    topo.connect("r3", "r4", cost=2)
    topo.connect("r4", "r1", cost=2)
    topo.add_host("h1", "r1")
    topo.add_host("h3", "r3")
    return topo


def detect_bound(topo):
    """Worst honest detection latency: a full dead interval plus one
    hello of phase skew plus processing slack."""
    return topo.dead_interval + topo.hello_interval + 1_000


def adjacency_state(topo, a, b):
    na, nb = topo.nodes[a], topo.nodes[b]
    adj = na.binding.adjacencies.get(nb.router_id)
    return None if adj is None else adj.state


# ---------------------------------------------------------------------------
# Hello-based failure detection.
# ---------------------------------------------------------------------------


def test_both_endpoints_detect_failure_within_dead_interval():
    topo = ring_with_primary()
    topo.converge()
    topo.fail_link("r1", "r2", at=5_000)
    topo.run(5_000 + detect_bound(topo) + 5_000)

    by_node = {d["node"]: d for d in topo.detections}
    assert set(by_node) == {"r1", "r2"}
    for d in by_node.values():
        assert d["reason"] == "dead-interval"
        assert d["latency"] is not None
        assert d["latency"] <= detect_bound(topo)
    # Each endpoint withdrew the adjacency from its own SPF view.
    assert topo.nodes["r2"].router_id not in topo.nodes["r1"].node.neighbors
    assert topo.nodes["r1"].router_id not in topo.nodes["r2"].node.neighbors


def test_detection_survives_partial_hello_loss():
    """Sporadic hello loss must not cause false positives: an adjacency
    dies only when *every* hello across the dead interval is lost, so a
    wider interval buys loss tolerance (the paper's liveness/latency
    trade)."""
    topo = ring_with_primary(dead_interval=10_000)
    topo.converge()
    link = topo.link_between("r1", "r2")
    start = topo.sim.now
    topo.enable_faults(seed=7)
    topo.injector.schedule_control_faults(
        link, start=start, stop=start + 40_000, drop=0.3, kinds=("hello",))
    topo.run(50_000)
    assert not topo.detections, (
        f"false neighbor death under 30% hello loss: {topo.detections}")
    assert adjacency_state(topo, "r1", "r2") == ADJ_FULL


def test_gray_link_one_way_hello_loss_detected_by_both_sides():
    topo = ring_with_primary()
    topo.enable_faults(seed=7)
    topo.converge()
    link = topo.link_between("r1", "r2")
    start = topo.sim.now + 2_000
    topo.injector.schedule_control_faults(
        link, start=start, stop=start + 30_000, drop=1.0,
        direction=0, kinds=("hello",))
    topo.run(2_000 + detect_bound(topo) + 8_000)

    reasons = {d["node"]: d["reason"] for d in topo.detections}
    # r2 stops hearing r1 (dead interval); r1 still hears r2 but is no
    # longer seen in r2's hellos (one-way teardown).
    assert reasons.get("r2") == "dead-interval"
    assert reasons.get("r1") == "one-way"
    # Gray detections carry no link-down timestamp: latency is None.
    assert all(d["latency"] is None for d in topo.detections)
    # After the gray window ends, hellos re-form the adjacency.
    topo.run(40_000)
    assert adjacency_state(topo, "r1", "r2") == ADJ_FULL
    assert adjacency_state(topo, "r2", "r1") == ADJ_FULL


# ---------------------------------------------------------------------------
# Restore handshake.
# ---------------------------------------------------------------------------


def test_restored_link_unused_until_handshake_completes():
    topo = ring_with_primary()
    topo.converge()
    h3_prefix = (topo.hosts["h3"].prefix, 24)
    primary_port = topo.link_between("r1", "r2").ports[0]
    alternate_port = topo.link_between("r4", "r1").ports[1]

    topo.fail_link("r1", "r2", at=1_000)
    topo.run(1_000 + detect_bound(topo) + 15_000)
    route = topo.nodes["r1"].node.routes.get(h3_prefix)
    assert route is not None and route[1] == alternate_port

    topo.restore_link("r1", "r2", at=0)
    topo.run(200)  # physically up, but no handshake yet
    assert topo.link_between("r1", "r2").up
    assert adjacency_state(topo, "r1", "r2") != ADJ_FULL
    route = topo.nodes["r1"].node.routes.get(h3_prefix)
    assert route is not None and route[1] == alternate_port, (
        "restored link entered the routing table before the hello "
        "handshake completed")

    topo.run(4 * topo.hello_interval + 20_000)
    assert adjacency_state(topo, "r1", "r2") == ADJ_FULL
    assert adjacency_state(topo, "r2", "r1") == ADJ_FULL
    route = topo.nodes["r1"].node.routes.get(h3_prefix)
    assert route is not None and route[1] == primary_port


# ---------------------------------------------------------------------------
# Reliable flooding under loss and corruption.
# ---------------------------------------------------------------------------


def _lossy_run(seed):
    """A full fail/restore cycle with 30% control-frame loss on the
    surviving alternate path; returns the deterministic artifact."""
    topo = ring_with_primary(seed=seed)
    topo.enable_observability()
    topo.enable_faults(seed=seed)
    topo.converge()
    base = topo.sim.now
    topo.injector.schedule_control_faults(
        topo.link_between("r4", "r1"), start=base, stop=base + 80_000,
        drop=0.3)
    topo.hosts["h1"].start_flow(topo.hosts["h3"], count=30, interval=2_000,
                                start=5_000)
    topo.fail_link("r1", "r2", at=10_000, restore_at=50_000)
    topo.run(120_000)
    return topo


def test_flooding_converges_despite_control_loss():
    topo = _lossy_run(seed=7)
    assert topo._lsdbs_equal()
    assert topo._control_settled()
    assert adjacency_state(topo, "r1", "r2") == ADJ_FULL
    # Loss made retransmission do real work.
    retransmits = sum(n.binding.retransmits for n in topo.nodes.values())
    assert retransmits > 0
    assert topo.fault_counts.get("ctrl-drop", 0) > 0
    # Both reconvergence episodes (failure + restore) completed.
    assert len(topo.reconvergences) == 2
    assert topo.hosts["h3"].received > 0


def test_control_loss_run_is_byte_identical_per_seed():
    def artifact(topo):
        return export.dumps({
            "incidents": topo.incidents,
            "detections": topo.detections,
            "reconvergences": topo.reconvergences,
            "stats": topo.stats(),
            "trace_hash": topo.trace_hash(),
        }, indent=2, sort_keys=True)

    first, second = artifact(_lossy_run(7)), artifact(_lossy_run(7))
    assert first == second
    assert artifact(_lossy_run(8)) != first


def test_corrupted_lsas_rejected_by_checksum_and_recovered():
    topo = ring_with_primary()
    topo.enable_faults(seed=7)
    topo.converge()
    base = topo.sim.now
    # Corrupt 40% of all control frames on the alternate path while a
    # flap forces LSA traffic across it.
    topo.injector.schedule_control_faults(
        topo.link_between("r4", "r1"), start=base, stop=base + 70_000,
        corrupt=0.4)
    topo.fail_link("r1", "r2", at=5_000, restore_at=40_000)
    topo.run(130_000)

    rejected = sum(n.binding.ctrl_rejected for n in topo.nodes.values())
    assert rejected > 0, "no corrupted frame ever reached a checksum"
    assert topo.fault_counts.get("ctrl-corrupt", 0) >= rejected
    # Retransmission out-waited the corruption window: no divergence.
    assert topo._lsdbs_equal()
    assert sum(n.binding.abandoned for n in topo.nodes.values()) == 0


# ---------------------------------------------------------------------------
# Control-plane crash/restart (the paper's control/data split).
# ---------------------------------------------------------------------------


def test_control_crash_keeps_data_plane_forwarding():
    topo = ring_with_primary()
    topo.enable_faults(seed=7)
    topo.converge()
    flow = topo.hosts["h1"].start_flow(topo.hosts["h3"], count=40,
                                       interval=2_000, start=2_000)
    topo.crash_control("r2", at=10_000, restart_after=30_000)
    topo.run(120_000)

    # Neighbors declared the silent router dead on their own.
    dead_declared = {d["node"] for d in topo.detections
                     if d["neighbor"] == "r2"}
    assert dead_declared == {"r1", "r3"}
    kinds = [i["kind"] for i in topo.incidents]
    assert "ctrl-router-crash" in kinds and "ctrl-router-restart" in kinds
    # Forwarding survived: traffic rerouted around r2, and after the
    # restart the adjacencies re-formed.
    assert topo.hosts["h3"].received_by_flow.get(flow, 0) > 0
    assert adjacency_state(topo, "r1", "r2") == ADJ_FULL
    assert adjacency_state(topo, "r3", "r2") == ADJ_FULL
    assert topo._lsdbs_equal()


# ---------------------------------------------------------------------------
# The control-plane health rule.
# ---------------------------------------------------------------------------


class TestControlPlaneRule:
    def test_green_when_no_binding(self):
        result = ControlPlaneRule().evaluate(HealthSample())
        assert result.level == "green"
        assert "no control-plane binding" in result.detail

    def test_green_when_quiet(self):
        sample = HealthSample(ctrl_neighbor_deaths=0, ctrl_retransmits=0,
                              ctrl_abandoned=0, ctrl_rejected=0,
                              ctrl_unacked=0)
        assert ControlPlaneRule().evaluate(sample).level == "green"

    def test_yellow_on_activity(self):
        sample = HealthSample(ctrl_neighbor_deaths=1, ctrl_retransmits=2,
                              ctrl_abandoned=0, ctrl_rejected=0,
                              ctrl_unacked=1)
        assert ControlPlaneRule().evaluate(sample).level == "yellow"

    def test_red_on_adjacency_flap_storm(self):
        sample = HealthSample(ctrl_neighbor_deaths=3, ctrl_retransmits=0,
                              ctrl_abandoned=0)
        result = ControlPlaneRule().evaluate(sample)
        assert result.level == "red"
        assert "flap storm" in result.detail

    def test_red_on_retransmit_storm(self):
        sample = HealthSample(ctrl_neighbor_deaths=0, ctrl_retransmits=32,
                              ctrl_abandoned=0)
        result = ControlPlaneRule().evaluate(sample)
        assert result.level == "red"
        assert "retransmit storm" in result.detail

    def test_red_on_abandoned_lsa(self):
        sample = HealthSample(ctrl_neighbor_deaths=0, ctrl_retransmits=0,
                              ctrl_abandoned=1)
        result = ControlPlaneRule().evaluate(sample)
        assert result.level == "red"
        assert "abandoned" in result.detail

    def test_plain_router_monitor_has_no_control_rule(self):
        monitor = Router().health_monitor()
        assert "control-plane" not in [r.name for r in monitor.rules]


def test_flap_storm_forces_monitor_red():
    """Three dead-interval flaps of one link inside a single evaluation
    window drive the attached node monitors to red."""
    topo = ring_with_primary()
    topo.converge()
    monitor = topo.nodes["r1"].router.health_monitor()
    assert "control-plane" in [r.name for r in monitor.rules]
    down = topo.dead_interval + 2 * topo.hello_interval
    for i in range(3):
        at = 2_000 + i * (down + 12_000)
        topo.fail_link("r1", "r2", at=at, restore_at=at + down)
    topo.run(3 * (down + 12_000) + 20_000)

    results = {r.rule: r for r in monitor.evaluate()}
    assert results["control-plane"].level == "red"
    assert "flap storm" in results["control-plane"].detail
    assert any(inc["rule"] == "control-plane" and inc["to"] == "red"
               for inc in monitor.incidents)
    # The next quiet window recovers to green (transition logged).
    topo.run(60_000)
    results = {r.rule: r for r in monitor.evaluate()}
    assert results["control-plane"].level == "green"
