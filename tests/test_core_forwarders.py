"""Tests for the Table 5 example forwarders: costs and functional
behaviour."""

import pytest

from repro.core.forwarder import Where
from repro.core.forwarders import (
    TABLE5_EXPECTED,
    ack_monitor,
    full_ip,
    minimal_ip,
    port_filter,
    syn_monitor,
    table5_specs,
    tcp_proxy,
    tcp_splicer,
    wavelet_dropper,
)
from repro.core.vrp import PROTOTYPE_BUDGET
from repro.net.ip import record_route_option
from repro.net.packet import make_tcp_packet, make_udp_like_packet
from repro.net.tcp import TCP_ACK, TCP_SYN


def test_table5_costs_match_paper_exactly():
    """SRAM bytes and register-operation counts from Table 5."""
    for spec in table5_specs():
        sram_bytes, reg_ops = TABLE5_EXPECTED[spec.name]
        cost = spec.program.cost()
        assert cost.sram_bytes == sram_bytes, spec.name
        assert spec.program.register_op_count() == reg_ops, spec.name


def test_all_table5_forwarders_fit_the_budget():
    for spec in table5_specs():
        ok, reason = PROTOTYPE_BUDGET.check(
            spec.program.cost(), spec.program.registers_needed
        )
        assert ok, f"{spec.name}: {reason}"


def test_heavy_forwarders_do_not_fit():
    """Full IP (660 cycles) and TCP proxy (800) exceed the 240-cycle VRP
    budget and must run higher in the hierarchy."""
    assert full_ip().cycles == 660
    assert tcp_proxy().cycles == 800
    assert full_ip().where is Where.SA
    assert tcp_proxy().where is Where.PE
    with pytest.raises(ValueError):
        full_ip(Where.ME)


# -- functional behaviour -------------------------------------------------------


def test_syn_monitor_counts_only_syns():
    state = {}
    action = syn_monitor().program.action
    action(make_tcp_packet("1.1.1.1", "2.2.2.2", flags=TCP_SYN), state)
    action(make_tcp_packet("1.1.1.1", "2.2.2.2", flags=TCP_ACK), state)
    action(make_tcp_packet("1.1.1.1", "2.2.2.2", flags=TCP_SYN | TCP_ACK), state)  # SYN-ACK: not counted
    action(make_udp_like_packet("1.1.1.1", "2.2.2.2"), state)
    assert state["syn_count"] == 1


def test_ack_monitor_detects_duplicates():
    state = {}
    action = ack_monitor().program.action
    for ack in (100, 100, 100, 200):
        action(make_tcp_packet("1.1.1.1", "2.2.2.2", flags=TCP_ACK, ack=ack), state)
    assert state["dup_acks"] == 2
    assert state["last_ack"] == 200
    assert state["acks_seen"] == 4


def test_ack_monitor_ignores_data_bearing_acks():
    state = {}
    action = ack_monitor().program.action
    for __ in range(3):
        action(
            make_tcp_packet("1.1.1.1", "2.2.2.2", flags=TCP_ACK, ack=5, payload=b"data"),
            state,
        )
    assert state.get("dup_acks", 0) == 0


def test_port_filter_drops_configured_ranges():
    spec = port_filter([(6000, 6999), (22, 22)])
    state = dict(spec.initial_state)
    action = spec.program.action
    assert action(make_tcp_packet("1.1.1.1", "2.2.2.2", dst_port=80), state)
    assert not action(make_tcp_packet("1.1.1.1", "2.2.2.2", dst_port=6500), state)
    assert not action(make_tcp_packet("1.1.1.1", "2.2.2.2", dst_port=22), state)
    assert action(make_udp_like_packet("1.1.1.1", "2.2.2.2"), state)  # non-TCP passes
    assert state["filtered"] == 2


def test_port_filter_validation():
    with pytest.raises(ValueError):
        port_filter([(1, 2)] * 6)
    with pytest.raises(ValueError):
        port_filter([(100, 50)])


def test_wavelet_dropper_honours_cutoff():
    spec = wavelet_dropper()
    action = spec.program.action
    state = {"cutoff": 3}
    low = make_tcp_packet("1.1.1.1", "2.2.2.2")
    low.ip.tos = 2 << 4
    high = make_tcp_packet("1.1.1.1", "2.2.2.2")
    high.ip.tos = 9 << 4
    assert action(low, state)
    assert not action(high, state)
    assert state["forwarded"] == 1 and state["dropped"] == 1


def test_tcp_splicer_patches_headers():
    spec = tcp_splicer()
    action = spec.program.action
    state = {"spliced": True, "seq_delta": 1000, "ack_delta": -500, "src_port": 7777}
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", src_port=5001, seq=10, ack=2000)
    assert action(packet, state)
    assert packet.tcp.seq == 1010
    assert packet.tcp.ack == 1500
    assert packet.tcp.src_port == 7777
    assert state["patched"] == 1


def test_tcp_splicer_inactive_without_state():
    action = tcp_splicer().program.action
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", seq=10)
    assert action(packet, {})
    assert packet.tcp.seq == 10  # untouched


def test_tcp_splicer_seq_wraps():
    action = tcp_splicer().program.action
    state = {"spliced": True, "seq_delta": 10}
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", seq=0xFFFFFFFF)
    action(packet, state)
    assert packet.tcp.seq == 9


def test_minimal_ip_decrements_ttl_and_rewrites_macs():
    spec = minimal_ip()
    state = {}
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", ttl=5)
    packet.meta["out_port"] = 3
    assert spec.program.action(packet, state)
    assert packet.ip.ttl == 4
    from repro.net import MACAddress

    assert packet.eth.src == MACAddress.for_port(3)
    assert state["forwarded"] == 1


def test_minimal_ip_drops_expiring_ttl():
    spec = minimal_ip()
    state = {}
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", ttl=1)
    assert spec.program.action(packet, state) is False
    assert state["ttl_expired"] == 1


def test_full_ip_processes_record_route():
    spec = full_ip()
    packet = make_udp_like_packet("1.1.1.1", "2.2.2.2", options=record_route_option())
    packet.meta["out_port"] = 2
    before_ptr = packet.ip.options[2]
    assert spec.action(packet)
    assert packet.ip.options[2] == before_ptr + 4  # one address recorded
    assert packet.meta["full_ip"]


def test_tcp_proxy_splices_after_handshake():
    spec = tcp_proxy()
    controller = spec.controller
    flow = dict(src="1.1.1.1", dst="2.2.2.2", src_port=999, dst_port=80)
    syn = make_tcp_packet(flags=TCP_SYN, **flow)
    synack = make_tcp_packet(flags=TCP_SYN | TCP_ACK, **flow)
    ack = make_tcp_packet(flags=TCP_ACK, **flow)
    assert controller.on_packet(syn) is None
    assert controller.on_packet(synack) is None
    state = controller.on_packet(ack)
    assert state is not None and state["spliced"]
    assert tuple(ack.flow_key()) in controller.spliced
