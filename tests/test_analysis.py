"""Tests for the closed-form envelope and the robustness experiments."""

import pytest

from repro.analysis import full_suite_vrp, paper_envelope, run_exceptional_flood, run_vrp_pentium_share
from repro.analysis.envelope import dram_bandwidth_check, memory_delay_per_packet


def test_envelope_matches_paper_arithmetic():
    env = paper_envelope()
    assert env.register_cycles_per_packet == 280
    # Paper: 430 cycles of memory delay (their rounding); ours from the
    # same tables lands within ~7%.
    assert env.memory_delay_cycles_per_packet == pytest.approx(430, rel=0.08)
    assert env.total_cycles_per_packet == pytest.approx(710, rel=0.05)
    assert env.optimistic_bound_pps == pytest.approx(4.29e6, rel=0.01)
    assert env.efficiency == pytest.approx(0.80, abs=0.03)
    # "the system is able to forward a little over 12 packets in parallel"
    assert 11.5 < env.packets_in_parallel < 13.5
    # The 1.77 Gbps headline.
    assert env.aggregate_gbps_min_packets == pytest.approx(1.77, abs=0.02)


def test_envelope_summary_readable():
    text = paper_envelope().summary()
    assert "280 register" in text
    assert "Mpps" in text


def test_dram_bandwidth_sanity():
    check = dram_bandwidth_check()
    assert check["dram_gbps"] == pytest.approx(6.4)
    assert check["ports_send_receive_gbps"] == pytest.approx(5.6)
    assert check["dram_covers_ports"]
    # "this rate exceeds the 4Gbps peak capacity of the IX bus"
    assert not check["ix_bus_covers_ports"]


def test_memory_delay_uses_table_2_and_3():
    # DRAM: 2r + 2w = 2*52 + 2*40 = 184
    # SRAM: 2r + 2w = 2*22 + 2*22 = 88
    # Scratch: 4r + 6w = 4*16 + 6*20 = 184
    assert memory_delay_per_packet() == 184 + 88 + 184


def test_full_suite_uses_most_of_budget():
    from repro.core.vrp import PROTOTYPE_BUDGET

    suite = full_suite_vrp()
    total_transfers = suite.sram_reads + suite.sram_writes
    assert total_transfers == pytest.approx(PROTOTYPE_BUDGET.sram_transfers, abs=2)
    assert 140 <= suite.reg_cycles <= PROTOTYPE_BUDGET.cycles


@pytest.mark.slow
def test_robustness_small_pentium_share_is_lossless():
    result = run_vrp_pentium_share(8, window=200_000)
    assert result.lossless
    assert result.pentium_processed_pps == pytest.approx(1.128e6 / 8, rel=0.1)
    assert result.forwarded_pps == pytest.approx(1.128e6, rel=0.1)


@pytest.mark.slow
def test_robustness_oversized_share_detected():
    result = run_vrp_pentium_share(2, window=250_000)
    assert not result.lossless
    # The Pentium saturates near its Table 4 limit with 1510-cycle work.
    assert result.pentium_processed_pps == pytest.approx(307e3, rel=0.1)


def test_robustness_share_every_validated():
    with pytest.raises(ValueError):
        run_vrp_pentium_share(1)


@pytest.mark.slow
def test_exceptional_flood_does_not_hurt_fast_path():
    light = run_exceptional_flood(32, window=150_000)
    heavy = run_exceptional_flood(4, window=150_000)
    # Fast-path forwarding continues at multi-Mpps either way.
    assert light.forwarded_pps > 3e6
    assert heavy.forwarded_pps > 2.5e6
    assert light.fast_path_drops == 0
    assert heavy.fast_path_drops == 0
    # The overload shows up only as exceptional-queue drops.
    assert heavy.sa_queue_drops >= 0
