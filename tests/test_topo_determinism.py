"""Seed determinism of the multi-router topology scenarios.

A topology run merges many routers' behavior into three canonical
artifacts -- the incident log, the merged trace hash, and the full
stats snapshot.  With one seed all three must serialize byte-identically
run after run (CI diffs the incident log against committed goldens), and
different seeds must actually move the failure schedule and traffic
jitter -- otherwise "seeded" is decoration.

Reduced windows keep these in the fast lane; determinism does not
depend on the window length.
"""

from repro.obs import export
from repro.topo.scenarios import run_topo

WINDOW = 90_000
WARMUP = 10_000


def _artifacts(scenario, seed):
    result = run_topo(scenario, seed=seed, window=WINDOW, warmup=WARMUP)[0]
    stats = export.dumps(result.stats, sort_keys=True)
    return result.incident_log_json(), result.trace_hash, stats


def test_link_failure_same_seed_byte_identical():
    first = _artifacts("link-failure", seed=11)
    second = _artifacts("link-failure", seed=11)
    assert first[0] == second[0]          # byte-identical incident log
    assert first[1] == second[1]          # identical merged trace hash
    assert first[2] == second[2]          # identical stats snapshot


def test_route_churn_same_seed_byte_identical():
    assert _artifacts("route-churn", seed=5) == _artifacts("route-churn", seed=5)


def test_congestion_same_seed_byte_identical():
    assert (_artifacts("congestion-collapse", seed=2)
            == _artifacts("congestion-collapse", seed=2))


def test_different_seeds_move_the_schedule():
    """Failure instants, flap offsets and traffic jitter are all seeded:
    the incident log must differ across seeds for every scenario."""
    for scenario in ("link-failure", "route-churn", "congestion-collapse"):
        logs = {seed: _artifacts(scenario, seed)[0] for seed in (3, 4, 5)}
        assert len(set(logs.values())) == 3, f"{scenario} ignores its seed"


def test_seed_is_recorded_in_the_artifact():
    result = run_topo("link-failure", seed=13, window=WINDOW, warmup=WARMUP)[0]
    assert result.seed == 13
    assert '"seed": 13' in result.incident_log_json()
