"""Smoke tests for the experiment workbench (fast, small windows).

The benchmarks run these at full fidelity; here we pin the interfaces
and the coarse shapes so refactoring cannot silently break the harness.
"""

import pytest

from repro.ixp.workbench import (
    figure7_series,
    figure9_series,
    figure10_series,
    measure_dram_direct_system,
    measure_input_rate,
    measure_output_rate,
    measure_system_rate,
    me_split_sweep,
    table1_rows,
)

TINY = 50_000


def test_measure_input_rate_returns_pps():
    rate = measure_input_rate(window=TINY)
    assert 2e6 < rate < 5e6


def test_measure_output_rate_returns_pps():
    rate = measure_output_rate(window=TINY)
    assert 2e6 < rate < 5e6


def test_measure_system_rate_measurement_fields():
    m = measure_system_rate(window=TINY)
    assert m.output_pps > 0
    assert m.window_cycles == pytest.approx(TINY, abs=500)
    assert m.input_mps >= m.input_packets
    assert 0 <= m.dram_utilization <= 1


def test_table1_has_all_six_rows():
    rows = table1_rows(window=TINY)
    assert len(rows) == 6
    assert all(0.5 < v < 6 for v in rows.values())


def test_figure7_respects_fifo_slot_limit():
    inputs, outputs = figure7_series(context_counts=[4, 20], window=TINY)
    assert 4 in inputs and 20 not in inputs  # >16 impossible for input
    assert 20 in outputs


def test_figure9_flavours():
    series = figure9_series(block_counts=[0, 16], window=TINY)
    assert set(series) == {"10 register instr", "4B SRAM read", "10 reg + 4B SRAM"}
    for flavour in series.values():
        assert flavour[16] < flavour[0]


def test_figure10_returns_microseconds():
    series = figure10_series(block_counts=[0], window=TINY)
    free, jam = series[0]
    assert 0.1 < free < 1.0
    assert jam > free


def test_dram_direct_saturates():
    m = measure_dram_direct_system(window=TINY)
    assert m.dram_utilization > 0.9


def test_me_split_sweep_shapes():
    results = me_split_sweep(window=TINY, splits=[(2, 4), (4, 2)])
    assert results[(4, 2)] > results[(2, 4)]
    with pytest.raises(ValueError):
        me_split_sweep(window=TINY, splits=[(5, 1)])
