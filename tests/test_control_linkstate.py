"""Tests for the link-state routing protocol (the control plane's OSPF
stand-in)."""

import pytest

from repro.control import LinkStateAd, LinkStateNetwork, LinkStateNode


def triangle():
    """Three routers in a triangle with one attached network each."""
    net = LinkStateNetwork()
    for rid in (1, 2, 3):
        node = net.add_node(rid)
        node.attach_network(f"10.{rid}.0.0", 16, port=0)
    # ports: toward the lower-numbered neighbor on port 1, higher on 2.
    net.connect(1, 2, cost=1, port_a=2, port_b=1)
    net.connect(2, 3, cost=1, port_a=2, port_b=1)
    net.connect(1, 3, cost=5, port_a=3, port_b=3)
    return net


def test_lsa_roundtrip():
    lsa = LinkStateAd(1, 7, ((2, 1), (3, 5)), (("10.1.0.0", 16, 0),))
    assert LinkStateAd.from_bytes(lsa.to_bytes()) == lsa


def test_flooding_converges_lsdbs():
    net = triangle()
    net.converge()
    nodes = list(net.nodes.values())
    for a in nodes:
        for b in nodes:
            assert a.converged_with(b)
    assert all(len(n.lsdb) == 3 for n in nodes)


def test_stale_lsas_not_reflooded():
    net = triangle()
    net.converge()
    baseline = net.messages
    # Re-delivering an old LSA must not trigger another flood storm.
    lsa = net.nodes[1].lsdb[2]
    net.nodes[1].receive(lsa.to_bytes(), from_neighbor=2)
    net.deliver_all()
    assert net.messages == baseline


def test_spf_prefers_cheap_path():
    """Router 1 reaches 10.3.0.0/16 via router 2 (cost 2) rather than the
    direct cost-5 link."""
    net = triangle()
    net.converge()
    node = net.nodes[1]
    next_hop, out_port = node.routes[("10.3.0.0", 16)]
    assert next_hop == 2
    assert out_port == node.port_toward(2)


def test_link_cost_change_reroutes():
    net = triangle()
    net.converge()
    # The 1-2 link degrades to cost 10: now the direct 1-3 link wins.
    net.nodes[1].neighbors[2] = 10
    net.nodes[2].neighbors[1] = 10
    net.nodes[1].originate()
    net.nodes[2].originate()
    net.deliver_all()
    next_hop, __ = net.nodes[1].routes[("10.3.0.0", 16)]
    assert next_hop == 3


def test_partition_leaves_unreachable_networks_out():
    net = LinkStateNetwork()
    for rid in (1, 2):
        node = net.add_node(rid)
        node.attach_network(f"10.{rid}.0.0", 16, port=0)
    # No links at all: each node knows only itself after origination.
    net.converge()
    assert ("10.2.0.0", 16) not in net.nodes[1].routes
    assert ("10.1.0.0", 16) in net.nodes[1].routes  # its own


def test_own_networks_use_local_port():
    net = triangle()
    net.converge()
    node = net.nodes[2]
    assert node.routes[("10.2.0.0", 16)] == (2, 0)


def test_spf_and_lsa_cycles_charged():
    charged = []
    node = LinkStateNode(1, charge_cycles=charged.append)
    node.attach_network("10.1.0.0", 16, 0)
    node.originate()
    lsa = LinkStateAd(2, 1, ((1, 1),), (("10.2.0.0", 16, 0),))
    node.receive(lsa.to_bytes())
    assert sum(charged) > 20_000  # SPF is compute-intensive
    assert node.spf_runs == 2


def test_link_validation():
    node = LinkStateNode(1)
    with pytest.raises(ValueError):
        node.add_link(2, cost=0)
    with pytest.raises(KeyError):
        node.port_toward(9)


def test_duplicate_router_id_rejected():
    net = LinkStateNetwork()
    net.add_node(1)
    with pytest.raises(ValueError):
        net.add_node(1)


def test_program_router_installs_routes():
    from repro import Router

    net = triangle()
    net.converge()
    router = Router()
    count = net.program_router(1, router)
    assert count == 3
    from repro.net import IPv4Address

    # 10.3.0.0 reached via the port toward router 2.
    route = router.routing_table.lookup(IPv4Address("10.3.0.1"))
    assert route.out_port == net.nodes[1].port_toward(2)


def test_route_updates_invalidate_route_cache():
    """The paper's robustness experiment premise: OSPF updating the
    routing table must flow through to the MicroEngines' route cache."""
    from repro import Router
    from repro.net import IPv4Address

    net = triangle()
    net.converge()
    router = Router()
    net.program_router(1, router)
    addr = IPv4Address("10.3.0.1")
    router.warm_route_cache([addr])
    assert router.chip.route_cache.lookup(addr) is not None
    # Topology change: reconverge and reprogram.
    net.nodes[1].neighbors[2] = 10
    net.nodes[1].originate()
    net.deliver_all()
    net.program_router(1, router)
    # The table generation moved, so the cached entry is now stale.
    assert router.chip.route_cache.lookup(addr) is None
