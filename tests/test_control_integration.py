"""Integration tests: the link-state protocol over the router's real
control path (classifier -> StrongARM -> PCI -> Pentium forwarder)."""

import pytest

from repro import Router
from repro.control import LinkStateAd, LinkStateNode
from repro.control.integration import ControlPlaneBinding, make_lsa_packet
from repro.net import IPv4Address
from repro.net.traffic import flow_stream, take

NEIGHBOR_IP = "192.0.2.2"


def bound_router():
    router = Router()
    router.add_route("10.0.0.0", 16, 0)  # a local network
    node = LinkStateNode(router_id=1)
    node.add_link(2, cost=1, via_port=7)  # neighbor 2 via port 7
    node.attach_network("10.0.0.0", 16, 0)
    node.originate()
    binding = ControlPlaneBinding(router, node)
    binding.listen_to_neighbor(NEIGHBOR_IP)
    return router, node, binding


def neighbor_lsa(sequence=1):
    """Router 2 advertises 10.77.0.0/16 behind itself."""
    return LinkStateAd(
        router_id=2, sequence=sequence,
        neighbors=((1, 1),),
        networks=(("10.77.0.0", 16, 3),),
    )


@pytest.mark.slow
def test_lsa_packet_climbs_to_pentium_and_programs_route():
    router, node, binding = bound_router()
    packet = make_lsa_packet(neighbor_lsa().to_bytes(), src=NEIGHBOR_IP)
    router.inject(7, iter([packet]))
    router.run(2_000_000)

    assert binding.lsas_received == 1
    assert router.stats()["pentium_processed"] == 1
    assert 2 in node.lsdb
    # The remote network is now routed via the port toward router 2.
    route = router.routing_table.lookup(IPv4Address("10.77.0.1"))
    assert route is not None
    assert route.out_port == 7


@pytest.mark.slow
def test_data_plane_follows_protocol_learned_route():
    router, node, binding = bound_router()
    router.inject(7, iter([make_lsa_packet(neighbor_lsa().to_bytes(), src=NEIGHBOR_IP)]))
    router.run(2_000_000)
    # Now send data to the learned prefix.
    data = take(flow_stream(4, dst="10.77.0.1", payload_len=6), 4)
    router.inject(0, iter(data))
    router.run(2_000_000)
    assert len(router.transmitted(7)) == 4


@pytest.mark.slow
def test_duplicate_lsa_does_not_reprogram():
    router, node, binding = bound_router()
    packets = [
        make_lsa_packet(neighbor_lsa().to_bytes(), src=NEIGHBOR_IP) for __ in range(3)
    ]
    router.inject(7, iter(packets))
    router.run(2_500_000)
    assert binding.lsas_received == 3
    # Only the first changed anything.
    first_programs = binding.route_programs
    assert first_programs == len(node.routes)


@pytest.mark.slow
def test_newer_sequence_reroutes():
    router, node, binding = bound_router()
    router.inject(7, iter([make_lsa_packet(neighbor_lsa(1).to_bytes(), src=NEIGHBOR_IP)]))
    router.run(1_500_000)
    # Router 2 moves the prefix behind a different local port of ours?
    # It can't -- but it can withdraw and re-advertise with new metadata;
    # here it bumps the sequence with the same content plus a new net.
    updated = LinkStateAd(
        router_id=2, sequence=2, neighbors=((1, 1),),
        networks=(("10.77.0.0", 16, 3), ("10.88.0.0", 16, 4)),
    )
    router.inject(7, iter([make_lsa_packet(updated.to_bytes(), src=NEIGHBOR_IP)]))
    router.run(1_500_000)
    assert router.routing_table.lookup(IPv4Address("10.88.0.9")) is not None


def test_spf_cycles_charged_to_pentium():
    router, node, binding = bound_router()
    before = router.pentium.busy_pentium_cycles
    router.inject(7, iter([make_lsa_packet(neighbor_lsa().to_bytes(), src=NEIGHBOR_IP)]))
    router.run(1_500_000)
    assert binding.pentium_cycles_charged > 20_000  # SPF ran
    assert router.pentium.busy_pentium_cycles - before > 20_000


@pytest.mark.slow
def test_protocol_keeps_share_under_pentium_flood():
    """Section 4.1's isolation: a greedy Pentium-bound data flow cannot
    starve the routing protocol's reserved share."""
    from repro.core.forwarders import tcp_proxy
    from repro.net.packet import FlowKey

    router, node, binding = bound_router()
    # A hungry proxy flow hogging the Pentium.
    proxy = tcp_proxy()
    proxy.expected_pps = 10_000
    key = FlowKey(IPv4Address("192.168.1.2"), 5001, IPv4Address("10.0.0.1"), 80)
    router.install(key, proxy)
    flood = take(
        flow_stream(80, src="192.168.1.2", src_port=5001, dst="10.0.0.1",
                    dst_port=80, payload_len=6),
        80,
    )
    lsa_packets = [
        make_lsa_packet(neighbor_lsa(seq).to_bytes(), src=NEIGHBOR_IP)
        for seq in range(1, 4)
    ]
    router.inject(0, iter(flood))
    router.inject(7, iter(lsa_packets))
    router.run(4_000_000)
    # All LSAs processed despite the flood; routes learned.
    assert binding.lsas_received == 3
    assert router.routing_table.lookup(IPv4Address("10.77.0.1")) is not None


# ---------------------------------------------------------------------------
# Route withdrawal: vanished destinations must stop resolving
# ---------------------------------------------------------------------------


def test_withdrawn_network_is_removed_from_table():
    """A destination that disappears from SPF's verdict must be
    withdrawn from the data plane -- the stale entry would blackhole
    traffic forever."""
    router, node, binding = bound_router()
    binding.deliver_direct(neighbor_lsa(1).to_bytes(), from_neighbor=2)
    assert router.routing_table.lookup(IPv4Address("10.77.0.1")) is not None

    # Router 2 re-advertises with the network gone.
    gone = LinkStateAd(router_id=2, sequence=2, neighbors=((1, 1),),
                       networks=())
    binding.deliver_direct(gone.to_bytes(), from_neighbor=2)
    assert router.routing_table.lookup(IPv4Address("10.77.0.1")) is None
    assert binding.route_withdrawals >= 1


def test_withdrawal_spares_statically_installed_routes():
    """The binding only withdraws what it programmed: operator-installed
    routes (here 10.0.0.0/16 from bound_router) survive reconciles."""
    router, node, binding = bound_router()
    binding.deliver_direct(neighbor_lsa(1).to_bytes(), from_neighbor=2)
    gone = LinkStateAd(router_id=2, sequence=2, neighbors=((1, 1),),
                       networks=())
    binding.deliver_direct(gone.to_bytes(), from_neighbor=2)
    static = router.routing_table.lookup(IPv4Address("10.0.0.1"))
    assert static is not None and static.out_port == 0


def test_neighbor_loss_withdraws_learned_routes():
    """Losing the adjacency itself (not just the LSA contents) must
    withdraw everything learned through that neighbor."""
    router, node, binding = bound_router()
    binding.deliver_direct(neighbor_lsa(1).to_bytes(), from_neighbor=2)
    assert router.routing_table.lookup(IPv4Address("10.77.0.1")) is not None

    node.remove_link(2)
    node.originate()
    binding.reconcile()
    assert router.routing_table.lookup(IPv4Address("10.77.0.1")) is None


def test_partition_leaves_no_stale_blackhole_route():
    """Regression for the stale-blackhole bug: after a partition the
    near-side router must stop resolving the far side's prefix instead
    of forwarding into the dead link forever."""
    from repro.topo import builders

    topo = builders.line(2, seed=7)
    topo.converge()
    r1 = topo.nodes["r1"]
    h2 = topo.hosts["h2"]
    far = IPv4Address(h2.address)
    assert r1.router.routing_table.lookup(far) is not None

    topo.fail_link("r1", "r2", at=1_000)
    topo.run(60_000)
    # The only path is gone; SPF has no route, so neither may the table.
    assert r1.router.routing_table.lookup(far) is None
    assert r1.binding.route_withdrawals >= 1

    # Traffic to the lost prefix is now *accountably* dropped (unroutable
    # on the slow path), not silently forwarded into the dead link.
    h1 = topo.hosts["h1"]
    h1.start_flow(h2, count=5, interval=2_000, flow="post-partition")
    topo.run(80_000)
    assert h2.received_by_flow.get("post-partition", 0) == 0
    assert r1.router.strongarm.dropped_local >= 5
    acct = topo.accounting()
    assert acct["residual"] == 0
