"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.engine import Delay, Interrupt, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(10, lambda: order.append("b"))
    sim.schedule(5, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 20


def test_same_time_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(7, lambda tag=tag: order.append(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_early():
    sim = Simulator()
    fired = []
    sim.schedule(100, lambda: fired.append(1))
    sim.run(until=50)
    assert fired == []
    assert sim.now == 50
    sim.run()
    assert fired == [1]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_process_delay_sequence():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(("start", sim.now))
        yield Delay(10)
        trace.append(("mid", sim.now))
        yield Delay(5)
        trace.append(("end", sim.now))

    sim.spawn(worker())
    sim.run()
    assert trace == [("start", 0), ("mid", 10), ("end", 15)]


def test_process_result_and_join():
    sim = Simulator()
    seen = []

    def child():
        yield Delay(3)
        return 42

    def parent():
        proc = sim.spawn(child())
        value = yield proc
        seen.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert seen == [(3, 42)]


def test_join_on_finished_process_resumes_immediately():
    sim = Simulator()
    seen = []

    def child():
        yield Delay(1)
        return "done"

    def parent(proc):
        yield Delay(10)
        value = yield proc
        seen.append((sim.now, value))

    proc = sim.spawn(child())
    sim.spawn(parent(proc))
    sim.run()
    assert seen == [(10, "done")]


def test_event_wakes_all_waiters_with_value():
    sim = Simulator()
    event = sim.event("go")
    woken = []

    def waiter(i):
        value = yield event
        woken.append((i, sim.now, value))

    for i in range(3):
        sim.spawn(waiter(i))
    sim.schedule(9, lambda: event.succeed("v"))
    sim.run()
    assert sorted(woken) == [(0, 9, "v"), (1, 9, "v"), (2, 9, "v")]


def test_event_succeed_twice_is_error():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_wait_on_triggered_event_is_immediate():
    sim = Simulator()
    event = sim.event()
    event.succeed(7)
    got = []

    def waiter():
        value = yield event
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert got == [(0, 7)]


def test_signal_only_wakes_current_waiters():
    sim = Simulator()
    signal = sim.signal()
    log = []

    def waiter(i, delay):
        yield Delay(delay)
        yield signal
        log.append((i, sim.now))

    sim.spawn(waiter(0, 0))
    sim.spawn(waiter(1, 20))  # arrives after the first fire
    sim.schedule(10, signal.fire)
    sim.schedule(30, signal.fire)
    sim.run()
    assert log == [(0, 10), (1, 30)]
    assert signal.fire_count == 2


def test_resource_mutual_exclusion_and_fifo():
    sim = Simulator()
    resource = sim.resource(capacity=1, name="bus")
    log = []

    def user(i):
        yield resource.acquire()
        log.append(("in", i, sim.now))
        yield Delay(10)
        log.append(("out", i, sim.now))
        resource.release()

    for i in range(3):
        sim.spawn(user(i))
    sim.run()
    assert log == [
        ("in", 0, 0), ("out", 0, 10),
        ("in", 1, 10), ("out", 1, 20),
        ("in", 2, 20), ("out", 2, 30),
    ]
    assert resource.total_waits == 2


def test_resource_capacity_two_allows_parallelism():
    sim = Simulator()
    resource = sim.resource(capacity=2)
    done_at = []

    def user():
        yield resource.acquire()
        yield Delay(10)
        resource.release()
        done_at.append(sim.now)

    for __ in range(4):
        sim.spawn(user())
    sim.run()
    assert done_at == [10, 10, 20, 20]


def test_release_without_acquire_is_error():
    sim = Simulator()
    resource = sim.resource()
    with pytest.raises(SimulationError):
        resource.release()


def test_bad_yield_raises():
    sim = Simulator()

    def broken():
        yield 123

    sim.spawn(broken())
    with pytest.raises(SimulationError):
        sim.run()


def test_interrupt_breaks_wait():
    sim = Simulator()
    event = sim.event()
    log = []

    def waiter():
        try:
            yield event
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))
        yield Delay(5)
        log.append(("after", sim.now))

    proc = sim.spawn(waiter())
    sim.schedule(8, lambda: proc.interrupt("timeout"))
    sim.run()
    assert log == [("interrupted", 8, "timeout"), ("after", 13)]
    # The event later firing must not resurrect the canceled wait.
    event.succeed()
    sim.run()
    assert log == [("interrupted", 8, "timeout"), ("after", 13)]


def test_interrupted_resource_waiter_leaves_queue():
    sim = Simulator()
    resource = sim.resource()
    log = []

    def holder():
        yield resource.acquire()
        yield Delay(100)
        resource.release()

    def impatient():
        try:
            yield resource.acquire()
            log.append("acquired")
            resource.release()
        except Interrupt:
            log.append("gave-up")

    sim.spawn(holder())
    proc = sim.spawn(impatient())
    sim.schedule(10, proc.interrupt)
    sim.run()
    assert log == ["gave-up"]
    assert resource.available == 1


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(5, lambda: (fired.append(1), sim.stop()))
    sim.schedule(10, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 2]


def test_spawn_all_names_processes():
    sim = Simulator()

    def noop():
        yield Delay(0)

    procs = sim.spawn_all([noop() for __ in range(3)], prefix="ctx")
    assert [p.name for p in procs] == ["ctx0", "ctx1", "ctx2"]
    sim.run()
    assert all(not p.alive for p in procs)
