"""Trace analytics: journeys, percentiles, decomposition, Chrome export.

The load-bearing property: a packet's per-stage deltas are differences
of consecutive timestamps, so they sum *exactly* to its end-to-end
latency -- and per-path mean decompositions therefore sum to the mean
end-to-end latency.  Verified both on synthetic traces and on a real
router scenario run.
"""

import json

import pytest

from repro.obs.analysis import (
    build_journeys,
    latency_report,
    percentile,
    render_latency_table,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.recorder import Recorder, TraceEvent


def _event(cycle, component, event, pid=0, detail=None):
    return TraceEvent(cycle, component, event, pid, detail)


def _fastpath_trace(pid=0, base=0):
    return [
        _event(base + 0, "me0.ctx0", "mac_in", pid),
        _event(base + 50, "me0.ctx0", "classify", pid),
        _event(base + 120, "queue3", "enqueue", pid),
        _event(base + 400, "me4.ctx0", "dequeue", pid, 280),
        _event(base + 500, "chip", "mac_out", pid),
    ]


# ---------------------------------------------------------------------------
# Journeys
# ---------------------------------------------------------------------------


def test_build_journeys_groups_by_packet_and_classifies_path():
    events = _fastpath_trace(pid=0) + _fastpath_trace(pid=1, base=1000)
    journeys = build_journeys(events)
    assert set(journeys) == {0, 1}
    assert journeys[0].complete and journeys[0].path == "fastpath"
    assert journeys[0].end_to_end == 500
    assert journeys[1].end_to_end == 500


def test_journey_transitions_sum_exactly_to_end_to_end():
    journey = build_journeys(_fastpath_trace())[0]
    deltas = journey.transitions()
    assert [name for name, __ in deltas] == [
        "mac_in->classify", "classify->enqueue", "enqueue->dequeue",
        "dequeue->mac_out",
    ]
    assert sum(d for __, d in deltas) == journey.end_to_end


def test_journey_critical_transition_is_the_largest_delta():
    journey = build_journeys(_fastpath_trace())[0]
    assert journey.critical_transition() == ("enqueue->dequeue", 280)


def test_slow_path_classification():
    events = [
        _event(0, "me0.ctx0", "mac_in"),
        _event(40, "me0.ctx0", "classify"),
        _event(90, "chip", "to_sa"),
        _event(300, "strongarm", "sa_dispatch"),
        _event(900, "chip", "requeue"),
        _event(950, "queue0", "enqueue"),
        _event(1200, "me4.ctx0", "dequeue", 0, 250),
        _event(1300, "chip", "mac_out"),
    ]
    journey = build_journeys(events)[0]
    assert journey.path == "sa_local"
    pentium = [e._replace(event="to_pentium") if e.event == "to_sa" else e
               for e in events]
    assert build_journeys(pentium)[0].path == "pentium"


def test_dropped_and_partial_journeys():
    events = [
        _event(0, "me0.ctx0", "mac_in", 0),
        _event(50, "chip", "drop", 0, 3),
        _event(0, "me0.ctx0", "mac_in", 1),
        _event(40, "me0.ctx0", "classify", 1),
    ]
    journeys = build_journeys(events)
    assert journeys[0].path == "dropped" and journeys[0].dropped_at == "drop"
    assert journeys[1].path == "partial" and not journeys[1].complete


def test_stale_timestamps_are_discarded_not_poisoning_deltas():
    events = _fastpath_trace()
    # A stale-stamped event riding in the middle (e.g. an old descriptor).
    events.insert(3, _event(10, "queue1", "enqueue", 0))
    journey = build_journeys(events)[0]
    assert journey.discarded == 1
    assert journey.end_to_end == 500
    assert all(delta >= 0 for __, delta in journey.transitions())


def test_events_without_packet_id_are_ignored():
    events = _fastpath_trace() + [TraceEvent(5, "sim", "spawn", None, "x")]
    journeys = build_journeys(events)
    assert set(journeys) == {0}


# ---------------------------------------------------------------------------
# Percentiles
# ---------------------------------------------------------------------------


def test_percentile_interpolates_linearly():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 40.0
    assert percentile(values, 50) == pytest.approx(25.0)
    assert percentile([7.0], 90) == 7.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


# ---------------------------------------------------------------------------
# The latency report
# ---------------------------------------------------------------------------


def _recorder_with(events):
    rec = Recorder()
    for e in events:
        rec.events.append(e)
    return rec


def test_latency_report_decomposition_sums_to_end_to_end():
    rec = _recorder_with(
        _fastpath_trace(pid=0)
        + _fastpath_trace(pid=1, base=2000)
        + _fastpath_trace(pid=2, base=5000)
    )
    report = latency_report(rec)
    block = report["paths"]["fastpath"]
    assert block["packets"] == 3
    assert block["stage_mean_sum"] == pytest.approx(block["end_to_end"]["mean"])
    assert not report["truncated"] and report["dropped_events"] == 0
    # Queueing decomposition picked up the dequeue wait details.
    assert report["queueing"]["overall"]["mean"] == pytest.approx(280.0)
    assert "queue3" in report["queueing"]["per_queue"]


def test_latency_report_flags_truncation():
    rec = Recorder(capacity=4)  # too small: evicts the packet starts
    for e in _fastpath_trace(pid=0) + _fastpath_trace(pid=1, base=2000):
        rec.events.append(e)
    report = latency_report(rec)
    assert report["truncated"] is True
    assert report["dropped_events"] == 6
    text = render_latency_table(report)
    assert "truncated" in text or "WARNING" in text


def test_latency_report_on_real_router_scenario():
    """Acceptance criterion: the fastpath decomposition from a real run
    sums (within rounding) to end-to-end mac_in->mac_out latency."""
    from repro.obs.profile import profile_scenario

    result = profile_scenario("router", window=60_000, warmup=15_000)
    report = latency_report(_recorder_with(result.events))
    assert report["complete"] > 0
    block = report["paths"]["fastpath"]
    assert block["packets"] > 10
    assert block["stage_mean_sum"] == pytest.approx(
        block["end_to_end"]["mean"], rel=1e-9
    )
    # The canonical pipeline stages all appear in the decomposition.
    for stage in ("mac_in->classify", "classify->enqueue",
                  "enqueue->dequeue", "dequeue->mac_out"):
        assert stage in block["stages"], block["stage_order"]
    for stats in block["stages"].values():
        assert stats["p50"] <= stats["p90"] <= stats["p99"] <= stats["max"]
    text = render_latency_table(report)
    assert "fastpath" in text and "critical path" in text


# ---------------------------------------------------------------------------
# Chrome-trace export
# ---------------------------------------------------------------------------


def test_chrome_trace_is_valid_and_monotonic():
    events = _fastpath_trace(pid=0) + _fastpath_trace(pid=1, base=1000)
    doc = to_chrome_trace(events)
    assert validate_chrome_trace(doc) == []
    names = {e.get("name") for e in doc["traceEvents"]}
    assert "mac_in" in names and "enqueue->dequeue" in names
    # Packet tracks carry complete (X) events with durations in us.
    x_events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert x_events and all(e["dur"] >= 0 for e in x_events)
    # 200 MHz clock: 500 cycles == 2.5 us.
    packet0 = [e for e in x_events if e["pid"] == 2 and e["tid"] == 0]
    assert sum(e["dur"] for e in packet0) == pytest.approx(2.5)


def test_chrome_trace_export_of_real_scenario_validates():
    from repro.obs.profile import profile_scenario

    result = profile_scenario("router", window=40_000, warmup=10_000)
    doc = json.loads(result.to_chrome())
    assert validate_chrome_trace(doc) == []
    assert doc["traceEvents"]


def test_validate_chrome_trace_catches_problems():
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    bad = {"traceEvents": [
        {"ph": "i", "pid": 1, "tid": 0, "ts": 10.0, "name": "a"},
        {"ph": "i", "pid": 1, "tid": 0, "ts": 5.0, "name": "b"},
        {"ph": "i", "pid": 1},
        "not-an-object",
    ]}
    problems = validate_chrome_trace(bad)
    assert any("runs backwards" in p for p in problems)
    assert any("numeric ts" in p for p in problems)
    assert any("not an object" in p for p in problems)


def test_profile_csv_export_matches_trace():
    from repro.obs.profile import profile_scenario

    result = profile_scenario("fastpath", window=20_000, warmup=5_000)
    lines = result.to_csv().splitlines()
    assert lines[0] == "cycle,component,event,packet_id,detail"
    assert len(lines) == 1 + len(result.events)
