"""Tests for the routing table (CPE trie), route cache and hardware hash."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import IPv4Address, RouteCache, RoutingTable
from repro.net.routing import hardware_hash


def build_basic_table():
    table = RoutingTable()
    table.add_default(9)
    table.add("10.0.0.0", 8, 1)
    table.add("10.1.0.0", 16, 2)
    table.add("10.1.2.0", 24, 3)
    table.add("10.1.2.3", 32, 4)
    table.add("192.168.0.0", 16, 5)
    return table


def test_longest_prefix_wins():
    table = build_basic_table()
    assert table.lookup(IPv4Address("10.1.2.3")).out_port == 4
    assert table.lookup(IPv4Address("10.1.2.9")).out_port == 3
    assert table.lookup(IPv4Address("10.1.9.9")).out_port == 2
    assert table.lookup(IPv4Address("10.9.9.9")).out_port == 1
    assert table.lookup(IPv4Address("192.168.77.1")).out_port == 5
    assert table.lookup(IPv4Address("8.8.8.8")).out_port == 9


def test_default_route_only():
    table = RoutingTable()
    table.add_default(2)
    assert table.lookup(IPv4Address("1.2.3.4")).out_port == 2


def test_empty_table_returns_none():
    table = RoutingTable()
    assert table.lookup(IPv4Address("1.2.3.4")) is None


def test_insert_order_does_not_matter():
    specs = [("10.0.0.0", 8, 1), ("10.1.0.0", 16, 2), ("10.1.2.0", 24, 3)]
    probes = ["10.1.2.5", "10.1.5.5", "10.5.5.5"]
    for ordering in ([0, 1, 2], [2, 1, 0], [1, 2, 0]):
        table = RoutingTable()
        for i in ordering:
            table.add(*specs[i])
        assert [table.lookup(IPv4Address(p)).out_port for p in probes] == [3, 2, 1]


def test_bad_strides_rejected():
    with pytest.raises(ValueError):
        RoutingTable(strides=(16, 8))
    with pytest.raises(ValueError):
        RoutingTable(strides=(16, 8, 0, 8))


def test_bad_prefix_length_rejected():
    with pytest.raises(ValueError):
        RoutingTable().add("1.2.3.4", 40, 0)


def test_alternate_strides_agree():
    table_a = RoutingTable(strides=(16, 8, 8))
    table_b = RoutingTable(strides=(8, 8, 8, 8))
    for spec in [("10.0.0.0", 8, 1), ("10.128.0.0", 9, 2), ("10.1.2.0", 23, 3)]:
        table_a.add(*spec)
        table_b.add(*spec)
    for probe in ["10.0.0.1", "10.128.1.1", "10.1.3.9", "10.1.2.1", "11.0.0.1"]:
        addr = IPv4Address(probe)
        a = table_a.lookup(addr)
        b = table_b.lookup(addr)
        assert (a.out_port if a else None) == (b.out_port if b else None)


@settings(max_examples=200, deadline=None)
@given(
    routes=st.lists(
        st.tuples(st.integers(0, 0xFFFFFFFF), st.integers(0, 32), st.integers(0, 15)),
        min_size=0,
        max_size=20,
    ),
    probes=st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=20),
)
def test_trie_matches_linear_scan(routes, probes):
    """The CPE trie must agree with a brute-force longest-prefix match for
    arbitrary route sets (equal-length duplicates may legally tie either
    way, so compare prefix lengths, and ports only when unambiguous)."""
    table = RoutingTable()
    for value, length, port in routes:
        masked = value & (0xFFFFFFFF << (32 - length)) if length else 0
        table.add(str(IPv4Address(masked)), length, port)
    for probe in probes:
        addr = IPv4Address(probe)
        trie = table.lookup(addr)
        linear = table.lookup_linear(addr)
        if linear is None:
            assert trie is None
        else:
            assert trie is not None
            assert trie.matches(addr)
            assert trie.length == linear.length


def test_hardware_hash_range_and_determinism():
    values = [hardware_hash(v, 10) for v in range(1000)]
    assert all(0 <= v < 1024 for v in values)
    assert hardware_hash(12345, 10) == hardware_hash(12345, 10)
    # Spread: at least half the buckets touched by 1000 sequential keys.
    assert len(set(values)) > 512


def test_route_cache_miss_then_hit():
    table = build_basic_table()
    cache = RouteCache(table, size_bits=8)
    addr = IPv4Address("10.1.2.3")
    assert cache.lookup(addr) is None  # cold miss -> exceptional path
    assert cache.fill(addr).out_port == 4
    assert cache.lookup(addr).out_port == 4
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5


def test_route_cache_invalidated_by_table_update():
    table = build_basic_table()
    cache = RouteCache(table, size_bits=8)
    addr = IPv4Address("10.1.2.3")
    cache.fill(addr)
    assert cache.lookup(addr) is not None
    table.add("10.1.2.3", 32, 7)  # route change bumps the generation
    assert cache.lookup(addr) is None  # stale entry must not be served
    assert cache.fill(addr).out_port == 7


def test_route_cache_fill_unroutable_returns_none():
    cache = RouteCache(RoutingTable())
    assert cache.fill(IPv4Address("9.9.9.9")) is None


def test_route_cache_warm_and_invalidate():
    table = build_basic_table()
    cache = RouteCache(table)
    cache.warm(["10.1.2.3", "192.168.0.1"])
    assert cache.lookup(IPv4Address("10.1.2.3")) is not None
    cache.invalidate()
    assert cache.lookup(IPv4Address("10.1.2.3")) is None


# ---------------------------------------------------------------------------
# Withdrawal, bulk updates and the pluggable backend surface
# ---------------------------------------------------------------------------


def test_remove_restores_covering_route():
    table = build_basic_table()
    assert table.lookup(IPv4Address("10.1.2.3")).out_port == 4
    table.remove("10.1.2.3", 32)
    # The /24 underneath must answer again -- not the stale /32.
    assert table.lookup(IPv4Address("10.1.2.3")).out_port == 3
    table.remove("10.1.2.0", 24)
    assert table.lookup(IPv4Address("10.1.2.3")).out_port == 2


def test_remove_missing_raises_discard_does_not():
    table = build_basic_table()
    with pytest.raises(KeyError):
        table.remove("4.4.4.0", 24)
    assert table.discard("4.4.4.0", 24) is None
    removed = table.discard("10.1.2.0", 24)
    assert removed is not None and removed.out_port == 3


def test_remove_last_route_empties_table():
    table = RoutingTable()
    table.add("10.0.0.0", 8, 1)
    table.remove("10.0.0.0", 8)
    assert len(table) == 0
    assert table.lookup(IPv4Address("10.1.1.1")) is None


def test_add_same_coverage_different_spelling_replaces():
    """Two spellings of one covering prefix are the same logical route."""
    table = RoutingTable()
    table.add("10.1.2.0", 24, 1)
    table.add("10.1.2.99", 24, 2)  # host bits ignored: same /24
    assert len(table) == 1
    assert table.lookup(IPv4Address("10.1.2.50")).out_port == 2


def test_add_many_fires_listener_once():
    table = RoutingTable()
    fires = []
    table.add_listener(lambda: fires.append(table.generation))
    table.add_many([("10.0.0.0", 8, 1), ("10.1.0.0", 16, 2),
                    ("10.1.2.0", 24, 3)])
    assert fires == [1]
    assert table.generation == 1
    assert table.lookup(IPv4Address("10.1.2.9")).out_port == 3


def test_bulk_nesting_defers_to_outermost():
    table = RoutingTable()
    fires = []
    table.add_listener(lambda: fires.append(None))
    with table.bulk():
        table.add("10.0.0.0", 8, 1)
        with table.bulk():
            table.add("10.1.0.0", 16, 2)
            table.remove("10.0.0.0", 8)
        assert fires == []  # still inside the outer bulk
    assert len(fires) == 1 and table.generation == 1
    assert table.lookup(IPv4Address("10.9.9.9")) is None
    assert table.lookup(IPv4Address("10.1.1.1")).out_port == 2


def test_bulk_without_changes_is_silent():
    table = build_basic_table()
    generation = table.generation
    with table.bulk():
        pass
    assert table.generation == generation


def test_route_cache_invalidation_counts_bulk_once():
    table = build_basic_table()
    cache = RouteCache(table, size_bits=8)
    before = cache.invalidations
    with table.bulk():
        for i in range(20):
            table.add(f"172.16.{i}.0", 24, i % 4)
    assert cache.invalidations == before + 1


def test_make_routing_table_selects_backend():
    from repro.net import BidirectionalTable, make_routing_table

    assert isinstance(make_routing_table("cpe"), RoutingTable)
    assert isinstance(make_routing_table("bidirectional"), BidirectionalTable)
    with pytest.raises(ValueError):
        make_routing_table("no-such-backend")


def test_probe_bounds():
    from repro.net import make_routing_table

    assert make_routing_table("cpe").probe_bound() == 3
    assert RoutingTable(strides=(8, 8, 8, 8)).probe_bound() == 4
    assert make_routing_table("bidirectional").probe_bound() == 18


def _fill_both():
    from repro.net import BidirectionalTable

    cpe = build_basic_table()
    bidi = BidirectionalTable()
    bidi.add_default(9)
    for prefix, length in [("10.0.0.0", 8), ("10.1.0.0", 16),
                           ("10.1.2.0", 24), ("10.1.2.3", 32),
                           ("192.168.0.0", 16)]:
        route = cpe._routes[(IPv4Address(prefix).value, length)]
        bidi.add(prefix, length, route.out_port)
    return cpe, bidi


def test_bidirectional_agrees_with_cpe():
    cpe, bidi = _fill_both()
    for probe in ["10.1.2.3", "10.1.2.9", "10.1.9.9", "10.9.9.9",
                  "192.168.77.1", "8.8.8.8"]:
        addr = IPv4Address(probe)
        assert bidi.lookup(addr).out_port == cpe.lookup(addr).out_port


def test_bidirectional_remove_and_bound():
    _, bidi = _fill_both()
    bidi.remove("10.1.2.3", 32)
    assert bidi.lookup(IPv4Address("10.1.2.3")).out_port == 3
    bidi.remove("192.168.0.0", 16)
    assert bidi.lookup(IPv4Address("192.168.1.1")).out_port == 9  # default
    assert 0 < bidi.avg_probes <= bidi.probe_bound()


@settings(max_examples=100, deadline=None)
@given(
    routes=st.lists(
        st.tuples(st.integers(0, 0xFFFFFFFF), st.integers(0, 32), st.integers(0, 15)),
        min_size=0,
        max_size=20,
    ),
    probes=st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=20),
)
def test_bidirectional_matches_references(routes, probes):
    from repro.net import BidirectionalTable

    table = BidirectionalTable()
    for value, length, port in routes:
        masked = value & (0xFFFFFFFF << (32 - length)) if length else 0
        table.add(str(IPv4Address(masked)), length, port)
    for probe in probes:
        addr = IPv4Address(probe)
        assert table.lookup(addr) == table.lookup_reference(addr)
        linear = table.lookup_linear(addr)
        assert (table.lookup(addr) is None) == (linear is None)
