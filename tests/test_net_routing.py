"""Tests for the routing table (CPE trie), route cache and hardware hash."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import IPv4Address, RouteCache, RoutingTable
from repro.net.routing import hardware_hash


def build_basic_table():
    table = RoutingTable()
    table.add_default(9)
    table.add("10.0.0.0", 8, 1)
    table.add("10.1.0.0", 16, 2)
    table.add("10.1.2.0", 24, 3)
    table.add("10.1.2.3", 32, 4)
    table.add("192.168.0.0", 16, 5)
    return table


def test_longest_prefix_wins():
    table = build_basic_table()
    assert table.lookup(IPv4Address("10.1.2.3")).out_port == 4
    assert table.lookup(IPv4Address("10.1.2.9")).out_port == 3
    assert table.lookup(IPv4Address("10.1.9.9")).out_port == 2
    assert table.lookup(IPv4Address("10.9.9.9")).out_port == 1
    assert table.lookup(IPv4Address("192.168.77.1")).out_port == 5
    assert table.lookup(IPv4Address("8.8.8.8")).out_port == 9


def test_default_route_only():
    table = RoutingTable()
    table.add_default(2)
    assert table.lookup(IPv4Address("1.2.3.4")).out_port == 2


def test_empty_table_returns_none():
    table = RoutingTable()
    assert table.lookup(IPv4Address("1.2.3.4")) is None


def test_insert_order_does_not_matter():
    specs = [("10.0.0.0", 8, 1), ("10.1.0.0", 16, 2), ("10.1.2.0", 24, 3)]
    probes = ["10.1.2.5", "10.1.5.5", "10.5.5.5"]
    for ordering in ([0, 1, 2], [2, 1, 0], [1, 2, 0]):
        table = RoutingTable()
        for i in ordering:
            table.add(*specs[i])
        assert [table.lookup(IPv4Address(p)).out_port for p in probes] == [3, 2, 1]


def test_bad_strides_rejected():
    with pytest.raises(ValueError):
        RoutingTable(strides=(16, 8))
    with pytest.raises(ValueError):
        RoutingTable(strides=(16, 8, 0, 8))


def test_bad_prefix_length_rejected():
    with pytest.raises(ValueError):
        RoutingTable().add("1.2.3.4", 40, 0)


def test_alternate_strides_agree():
    table_a = RoutingTable(strides=(16, 8, 8))
    table_b = RoutingTable(strides=(8, 8, 8, 8))
    for spec in [("10.0.0.0", 8, 1), ("10.128.0.0", 9, 2), ("10.1.2.0", 23, 3)]:
        table_a.add(*spec)
        table_b.add(*spec)
    for probe in ["10.0.0.1", "10.128.1.1", "10.1.3.9", "10.1.2.1", "11.0.0.1"]:
        addr = IPv4Address(probe)
        a = table_a.lookup(addr)
        b = table_b.lookup(addr)
        assert (a.out_port if a else None) == (b.out_port if b else None)


@settings(max_examples=200, deadline=None)
@given(
    routes=st.lists(
        st.tuples(st.integers(0, 0xFFFFFFFF), st.integers(0, 32), st.integers(0, 15)),
        min_size=0,
        max_size=20,
    ),
    probes=st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=20),
)
def test_trie_matches_linear_scan(routes, probes):
    """The CPE trie must agree with a brute-force longest-prefix match for
    arbitrary route sets (equal-length duplicates may legally tie either
    way, so compare prefix lengths, and ports only when unambiguous)."""
    table = RoutingTable()
    for value, length, port in routes:
        masked = value & (0xFFFFFFFF << (32 - length)) if length else 0
        table.add(str(IPv4Address(masked)), length, port)
    for probe in probes:
        addr = IPv4Address(probe)
        trie = table.lookup(addr)
        linear = table.lookup_linear(addr)
        if linear is None:
            assert trie is None
        else:
            assert trie is not None
            assert trie.matches(addr)
            assert trie.length == linear.length


def test_hardware_hash_range_and_determinism():
    values = [hardware_hash(v, 10) for v in range(1000)]
    assert all(0 <= v < 1024 for v in values)
    assert hardware_hash(12345, 10) == hardware_hash(12345, 10)
    # Spread: at least half the buckets touched by 1000 sequential keys.
    assert len(set(values)) > 512


def test_route_cache_miss_then_hit():
    table = build_basic_table()
    cache = RouteCache(table, size_bits=8)
    addr = IPv4Address("10.1.2.3")
    assert cache.lookup(addr) is None  # cold miss -> exceptional path
    assert cache.fill(addr).out_port == 4
    assert cache.lookup(addr).out_port == 4
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5


def test_route_cache_invalidated_by_table_update():
    table = build_basic_table()
    cache = RouteCache(table, size_bits=8)
    addr = IPv4Address("10.1.2.3")
    cache.fill(addr)
    assert cache.lookup(addr) is not None
    table.add("10.1.2.3", 32, 7)  # route change bumps the generation
    assert cache.lookup(addr) is None  # stale entry must not be served
    assert cache.fill(addr).out_port == 7


def test_route_cache_fill_unroutable_returns_none():
    cache = RouteCache(RoutingTable())
    assert cache.fill(IPv4Address("9.9.9.9")) is None


def test_route_cache_warm_and_invalidate():
    table = build_basic_table()
    cache = RouteCache(table)
    cache.warm(["10.1.2.3", "192.168.0.1"])
    assert cache.lookup(IPv4Address("10.1.2.3")) is not None
    cache.invalidate()
    assert cache.lookup(IPv4Address("10.1.2.3")) is None
