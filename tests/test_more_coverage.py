"""Additional coverage: route-cache collisions, larger clusters, chip
internals, and scheduler/VRP extremes."""

import pytest

from repro.net import IPv4Address, RouteCache, RoutingTable
from repro.net.routing import hardware_hash


# -- route cache collision behaviour -----------------------------------------------


def find_colliding_addresses(bits=6):
    """Two distinct addresses mapping to the same cache slot."""
    seen = {}
    for value in range(1, 1 << 16):
        slot = hardware_hash(value, bits)
        if slot in seen:
            return IPv4Address(seen[slot]), IPv4Address(value)
        seen[slot] = value
    raise AssertionError("no collision found")


def test_direct_mapped_cache_evicts_on_collision():
    table = RoutingTable()
    table.add_default(1)
    cache = RouteCache(table, size_bits=6)
    a, b = find_colliding_addresses(6)
    cache.fill(a)
    assert cache.lookup(a) is not None
    cache.fill(b)  # same slot: evicts a
    assert cache.lookup(b) is not None
    assert cache.lookup(a) is None  # conflict miss


def test_cache_hit_rate_accounting_over_mixed_traffic():
    table = RoutingTable()
    table.add_default(0)
    cache = RouteCache(table, size_bits=10)
    addrs = [IPv4Address(f"10.0.{i}.1") for i in range(20)]
    for addr in addrs:
        cache.fill(addr)
    for __ in range(5):
        for addr in addrs:
            assert cache.lookup(addr) is not None
    assert cache.hit_rate > 0.9


# -- four-member cluster ring -----------------------------------------------------------


@pytest.mark.slow
def test_four_member_cluster():
    """The paper's stated section 6 plan: 'four Pentium/IXP pairs
    connected by a Gigabit Ethernet switch'."""
    from repro.core.cluster import RouterCluster
    from repro.net.traffic import flow_stream, take

    cluster = RouterCluster(num_routers=4)
    for owner in range(4):
        cluster.add_route(f"10.{owner + 1}.0.0", 16, owner=owner, out_port=1)
    for router in cluster.routers:
        router.warm_route_cache([f"10.{i + 1}.0.1" for i in range(4)])
    # Member 0 sends to every member's prefix.
    for target in range(1, 4):
        packets = take(flow_stream(3, dst=f"10.{target + 1}.0.1",
                                   src_port=6000 + target, payload_len=6), 3)
        cluster.inject(0, target + 2, iter(packets))
    cluster.run(4_000_000)
    for target in range(1, 4):
        assert len(cluster.routers[target].transmitted(1)) == 3, f"member {target}"
    assert cluster.stats()["switch"]["forwarded"] == 9


# -- chip internals ---------------------------------------------------------------------


def test_synthetic_single_pattern_targets_port_zero():
    from repro.ixp import ChipConfig, IXP1200

    chip = IXP1200(ChipConfig(synthetic_pattern="single"))
    chip.measure(window=30_000, warmup=5_000)
    queues = chip.bank.queues_for_port(0)
    others = [q for p in range(1, 8) for q in chip.bank.queues_for_port(p)]
    assert sum(q.enqueued for q in queues) > 0
    assert sum(q.enqueued for q in others) == 0


def test_chip_start_window_resets_memory_accounting():
    from repro.ixp import ChipConfig, IXP1200

    chip = IXP1200(ChipConfig())
    chip.sim.run(until=20_000)
    assert chip.dram.busy_cycles > 0
    chip.start_window()
    assert chip.dram.busy_cycles == 0


def test_exceptional_flood_drops_counted_per_queue():
    from repro.ixp import ChipConfig, IXP1200

    chip = IXP1200(ChipConfig(
        synthetic_exceptional_every=1,  # everything exceptional
        sa_queue_capacity=8,
    ))
    chip.measure(window=40_000, warmup=5_000)
    # With no StrongARM attached, the local queue fills and drops.
    assert len(chip.sa_local_queue) == 8
    assert chip.counters["sa_drops"] > 0
    # But every MP was still received and classified at line speed
    # (one MP may be mid-pipeline when the window closes).
    assert abs(chip.counters["input_mps"] - chip.counters["exceptional"]) <= 2


# -- VRP / budget extremes ----------------------------------------------------------------


def test_vrp_program_with_forward_jump_compiles():
    from repro.core.vrp import JumpForward, RegOps, VRPProgram

    program = VRPProgram("branchy", [RegOps(5), JumpForward(3), RegOps(4)])
    timed = program.to_timed()
    assert timed.reg_cycles == 5 + 4 + 2  # branch delay counted as busy


def test_budget_for_absurd_rates():
    from repro.core.vrp import budget_for_line_rate

    tiny = budget_for_line_rate(1_000.0)  # 1 Kpps: enormous budget
    assert tiny.cycles > 100_000
    assert tiny.sram_transfers == 64  # capped
    flat = budget_for_line_rate(10e6)  # beyond the hardware: zero budget
    assert flat.cycles == 0
    assert flat.sram_transfers == 0


def test_wfq_three_way_weights():
    from repro.core.wfq import InputSideWFQ
    from repro.net.packet import make_tcp_packet

    wfq = InputSideWFQ(num_priorities=4)
    for name, weight, port in (("a", 4.0, 1), ("b", 2.0, 2), ("c", 1.0, 3)):
        wfq.add_class(name, weight,
                      lambda p, port=port: p.tcp is not None and p.tcp.src_port == port)
    packets = {p: make_tcp_packet("1.1.1.1", "2.2.2.2", src_port=p) for p in (1, 2, 3)}
    levels = {1: [], 2: [], 3: []}
    for __ in range(12):  # equal arrival rates
        for port in (1, 2, 3):
            levels[port].append(wfq.priority_for(packets[port]))
    # Heavier classes end up at better (lower) priorities.
    assert max(levels[1]) <= 1
    assert levels[3][-1] > levels[2][-1] >= levels[1][-1]
