"""Failure-injection tests: the robustness claims under adverse and
degenerate conditions.

The paper's central promise is isolation: no workload, extension or
overload may stop the router from receiving and classifying packets at
line speed.  These tests push each failure mode and check the blast
radius stays contained.
"""

import pytest

from repro import ALL, Router, RouterConfig
from repro.core.forwarders import port_filter
from repro.net.packet import make_tcp_packet
from repro.net.traffic import flow_stream, single_port_flood, take


def booted(**kwargs):
    router = Router(RouterConfig(**kwargs)) if kwargs else Router()
    for port in range(10):
        router.add_route(f"10.{port}.0.0", 16, port)
    return router


@pytest.mark.slow
def test_slow_egress_port_does_not_block_other_ports():
    """Congest one 100 Mbps egress far beyond line rate; traffic to the
    other ports must be completely unaffected."""
    router = booted(queue_capacity=16)
    jam = take(single_port_flood(150, out_port=1), 150)
    clean = take(flow_stream(10, out_port=5, payload_len=6), 10)
    router.warm_route_cache([p.ip.dst for p in jam + clean])
    router.inject(8, iter(jam))    # gigabit ingress -> 100 Mbps egress
    router.inject(0, iter(clean))
    router.run(2_500_000)
    assert len(router.transmitted(5)) == 10  # untouched
    # The jammed port dropped in its own queue only.
    port1_queues = router.chip.bank.queues_for_port(1)
    assert sum(q.dropped for q in port1_queues) > 0
    port5_queues = router.chip.bank.queues_for_port(5)
    assert sum(q.dropped for q in port5_queues) == 0


def test_queue_overflow_counted_not_crashed():
    router = booted(queue_capacity=4)
    packets = take(single_port_flood(120, out_port=2), 120)
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(9, iter(packets))
    router.run(2_000_000)
    stats = router.stats()
    delivered = len(router.transmitted(2))
    dropped = sum(q.dropped for q in router.chip.bank.queues_for_port(2))
    rx_dropped = router.ports[9].stats.counter("rx_dropped_packets").value
    assert delivered + dropped + rx_dropped == 120
    assert delivered > 0


def test_ttl_expiry_dropped_in_data_plane():
    router = booted()
    dying = [make_tcp_packet("1.1.1.1", "10.1.0.5", ttl=1) for __ in range(3)]
    living = take(flow_stream(3, out_port=1, payload_len=6), 3)
    router.warm_route_cache([p.ip.dst for p in dying + living])
    router.inject(0, iter(dying + living))
    router.run(1_200_000)
    assert len(router.transmitted(1)) == 3
    assert router.stats()["vrp_dropped"] == 3
    assert router.getdata(router.ip_fid)["ttl_expired"] == 3


def test_malformed_frames_do_not_wedge_the_port():
    """Garbage frames interleaved with good traffic: the good traffic
    flows, the garbage is dropped at classification."""
    router = booted()
    good = take(flow_stream(5, out_port=3, payload_len=6), 5)
    router.warm_route_cache([p.ip.dst for p in good])
    # Deliver raw garbage directly into the port buffer between packets.
    bad = make_tcp_packet("2.2.2.2", "10.3.0.9")
    bad_frame = b"\xff" * 64
    router.ports[0].deliver(bad, bad_frame)
    router.inject(0, iter(good))
    router.run(1_500_000)
    assert len(router.transmitted(3)) == 5
    assert router.stats()["classifier_failures"] >= 1


@pytest.mark.slow
def test_buffer_overwrite_loses_only_stale_packets():
    """Shrink the buffer pool so the circular allocator laps itself while
    an egress port is congested: stale packets are lost (counted), and
    the router keeps running."""

    router = booted(queue_capacity=256)
    # Replace the pool with a tiny one to force reuse.
    from repro.ixp.buffers import BufferPool

    router.chip.pool = BufferPool(buffer_count=24, buffer_bytes=2048)
    packets = take(single_port_flood(200, out_port=1), 200)
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(8, iter(packets))
    router.run(4_000_000)
    stats = router.stats()
    assert stats["lost_buffers"] > 0          # the documented failure mode
    assert len(router.transmitted(1)) > 0     # but service continued
    assert stats["lost_buffers"] + len(router.transmitted(1)) \
        + sum(q.dropped for q in router.chip.bank.queues_for_port(1)) \
        + router.ports[8].stats.counter("rx_dropped_packets").value \
        + len(router.chip.bank.queues_for_port(1)[0]) == 200


def test_filter_dropping_everything_keeps_router_alive():
    router = booted()
    router.install(ALL, port_filter([(0, 65535)]))  # drop all TCP
    packets = take(flow_stream(10, out_port=1, payload_len=6), 10)
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(0, iter(packets))
    router.run(1_200_000)
    assert router.stats()["vrp_dropped"] == 10
    assert len(router.transmitted()) == 0
    # Forwarding machinery is still healthy for non-TCP traffic.
    from repro.net.packet import make_udp_like_packet

    udp = [make_udp_like_packet("9.9.9.9", "10.2.0.1", payload=b"u") for __ in range(3)]
    router.warm_route_cache([p.ip.dst for p in udp])
    router.inject(1, iter(udp))
    router.run(1_200_000)
    assert len(router.transmitted(2)) == 3


@pytest.mark.slow
def test_sa_queue_overflow_confined_to_exceptional_stream():
    """Unroutable packets flood the StrongARM queue; once it fills, the
    excess is dropped there while routable traffic is untouched."""
    router = booted()
    # 60 unroutable packets (no matching prefix -> route-fill fails).
    unroutable = [make_tcp_packet("5.5.5.5", f"172.31.{i}.1") for i in range(60)]
    good = take(flow_stream(8, out_port=4, payload_len=6), 8)
    router.warm_route_cache([p.ip.dst for p in good])
    router.inject(0, iter(unroutable))
    router.inject(1, iter(good))
    router.run(2_500_000)
    assert len(router.transmitted(4)) == 8
    assert router.stats()["exceptional"] == 60
    # Unroutable packets were dropped by the StrongARM's route-fill.
    assert router.strongarm.dropped_local == 60


def test_remove_nonexistent_fid_raises_cleanly():
    router = booted()
    with pytest.raises(KeyError):
        router.remove(424242)
    with pytest.raises(KeyError):
        router.getdata(424242)


def test_zero_traffic_run_is_quiet():
    router = booted()
    router.run(150_000)
    stats = router.stats()
    assert stats["input_packets"] == 0
    assert stats["output_packets"] == 0
    assert stats["queue_drops"] == 0
