"""Tests for Packet construction/serialization and MP segmentation."""

import pytest
from hypothesis import given, strategies as st

from repro.net import (
    FlowKey,
    MPPosition,
    Packet,
    make_tcp_packet,
    make_udp_like_packet,
    reassemble_mps,
    segment_packet,
)
from repro.net.mp import MP_SIZE, MacPacket, mp_count
from repro.net.packet import make_syn_packet


def test_min_packet_is_64_bytes_on_wire():
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2")
    assert packet.frame_len == 64


def test_large_packet_frame_len():
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", payload=b"x" * 1000)
    # 14 eth + 20 ip + 20 tcp + 1000 payload + 4 fcs
    assert packet.frame_len == 1058


def test_packet_bytes_roundtrip():
    packet = make_tcp_packet("10.1.0.5", "10.2.0.9", 5001, 443, payload=b"payload", seq=99)
    wire = packet.to_bytes()
    parsed = Packet.from_bytes(wire, arrival_port=3)
    assert parsed.ip.src == packet.ip.src
    assert parsed.ip.dst == packet.ip.dst
    assert parsed.tcp.seq == 99
    assert parsed.payload == b"payload"
    assert parsed.arrival_port == 3
    ok, reason = parsed.ip.validate(frame_payload_len=len(wire) - 14)
    assert ok, reason


def test_packet_flow_key():
    packet = make_tcp_packet("10.1.0.5", "10.2.0.9", 5001, 443)
    key = packet.flow_key()
    assert isinstance(key, FlowKey)
    assert key.src_port == 5001 and key.dst_port == 443
    assert str(key.dst_addr) == "10.2.0.9"


def test_non_tcp_flow_key_has_zero_ports():
    packet = make_udp_like_packet("1.1.1.1", "2.2.2.2")
    key = packet.flow_key()
    assert key.src_port == 0 and key.dst_port == 0


def test_syn_packet_has_syn_flag():
    packet = make_syn_packet("1.1.1.1", "2.2.2.2", 4242)
    assert packet.tcp.flags & 0x02


def test_packet_ids_are_unique():
    a = make_tcp_packet("1.1.1.1", "2.2.2.2")
    b = make_tcp_packet("1.1.1.1", "2.2.2.2")
    assert a.packet_id != b.packet_id


def test_packet_copy_is_deep_for_headers():
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", ttl=10)
    packet.meta["queue"] = 7
    dup = packet.copy()
    dup.ip.ttl = 3
    dup.meta["queue"] = 1
    assert packet.ip.ttl == 10
    assert packet.meta["queue"] == 7


# -- MP segmentation ---------------------------------------------------------


def test_mp_count_examples_from_paper():
    assert mp_count(64) == 1
    # "forwarding a 1500-byte packet involves forwarding twenty-four MPs"
    assert mp_count(1500) == 24
    assert mp_count(65) == 2


def test_mp_count_rejects_nonpositive():
    with pytest.raises(ValueError):
        mp_count(0)


def test_segment_min_packet_is_single_only_mp():
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2")
    mps = segment_packet(packet, port=4)
    assert len(mps) == 1
    assert mps[0].position is MPPosition.ONLY
    assert mps[0].port == 4
    assert mps[0].packet is packet


def test_segment_tags_first_middle_last():
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", payload=b"x" * 200)
    mps = segment_packet(packet)
    positions = [mp.position for mp in mps]
    assert positions[0] is MPPosition.FIRST
    assert positions[-1] is MPPosition.LAST
    assert all(p is MPPosition.MIDDLE for p in positions[1:-1])
    assert len(positions) == mp_count(len(packet.to_bytes()))


def test_reassemble_roundtrip():
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", payload=b"y" * 333)
    wire = packet.to_bytes()
    assert reassemble_mps(segment_packet(packet, wire)) == wire


def test_reassemble_rejects_out_of_order():
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", payload=b"y" * 200)
    mps = segment_packet(packet)
    with pytest.raises(ValueError):
        reassemble_mps(mps[::-1])


def test_reassemble_rejects_empty():
    with pytest.raises(ValueError):
        reassemble_mps([])


def test_mp_rejects_oversize_data():
    with pytest.raises(ValueError):
        MacPacket(b"x" * (MP_SIZE + 1), MPPosition.ONLY)
    with pytest.raises(ValueError):
        MacPacket(b"", MPPosition.ONLY)


@given(payload_len=st.integers(min_value=0, max_value=1400))
def test_segmentation_roundtrip_property(payload_len):
    packet = make_tcp_packet("3.3.3.3", "4.4.4.4", payload=b"z" * payload_len)
    wire = packet.to_bytes()
    mps = segment_packet(packet, wire)
    assert reassemble_mps(mps) == wire
    assert len(mps) == mp_count(len(wire))
    # All MPs except possibly the last are full.
    assert all(len(mp) == MP_SIZE for mp in mps[:-1])
