"""Structure test for the one-call reproduction report (tiny windows so
this stays a unit test; the CLI's `report` runs it at full fidelity)."""

import pytest
from repro.analysis.report import generate_report


@pytest.mark.slow
def test_report_contains_all_sections():
    text = generate_report(window=25_000)
    for heading in (
        "# Reproduction report",
        "## Closed-form envelope",
        "## Table 1",
        "## Switching paths",
        "## Figure 9 anchor",
        "## Robustness",
        "## Health watchdog",
        "## Latency decomposition",
        "## Fault matrix",
    ):
        assert heading in text
    # Markdown tables render with the three-column layout.
    assert "| metric | paper | measured |" in text
    # Key published anchors appear.
    assert "280" in text and "4.29" in text and "526" in text
    # Every campaign scenario reports, and every invariant held.
    for scenario in ("pentium-crash", "vrp-overrun", "i2o-storm"):
        assert scenario in text
    assert "FAILED" not in text
