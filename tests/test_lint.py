"""``repro lint``: the static-analysis pass that guards the simulator's
determinism and null-object invariants.

Contract under test (docs/static-analysis.md):

* each rule code fires on a minimal bad snippet, at the right line,
  and stays quiet on the idiomatic clean spelling;
* suppressions (line ``disable=`` and file ``file-disable=``) and the
  baseline ratchet behave as documented;
* the repository's own ``src/`` tree lints clean -- the self-check that
  keeps the committed ``lint-baseline.json`` empty.
"""

import gc
import json
import os
from pathlib import Path
from textwrap import dedent

from repro.lint import (
    RULES,
    LintContext,
    apply_baseline,
    check_null_parity,
    lint_paths,
    lint_source,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.cli import rule_table
from repro.obs import events

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: A path that hits none of the config exemptions.
PLAIN = "src/repro/sample.py"


def one(source, path=PLAIN):
    """Lint a snippet and return its single violation."""
    violations = lint_source(dedent(source), path)
    assert len(violations) == 1, violations
    return violations[0]


def clean(source, path=PLAIN):
    violations = lint_source(dedent(source), path)
    assert violations == [], violations


# ---------------------------------------------------------------------------
# RPR001: syntax errors surface as violations, not crashes
# ---------------------------------------------------------------------------


def test_syntax_error_is_a_violation():
    v = one("def broken(:\n    pass\n")
    assert v.code == "RPR001"
    assert v.line == 1


# ---------------------------------------------------------------------------
# RPR1xx determinism
# ---------------------------------------------------------------------------


def test_rpr101_module_level_random_call():
    v = one("""\
        import random

        def jitter():
            return random.choice([1, 2, 3])
        """)
    assert v.code == "RPR101"
    assert v.line == 4


def test_rpr101_from_random_import():
    v = one("from random import randint\n")
    assert (v.code, v.line) == ("RPR101", 1)


def test_rpr101_clean_seeded_instance():
    clean("""\
        import random
        from random import Random

        rng = random.Random(7)
        other = Random(11)
        value = rng.randint(0, 3)
        """)


def test_rpr102_wall_clock_call():
    v = one("""\
        import time

        def stamp():
            return time.perf_counter()
        """)
    assert (v.code, v.line) == ("RPR102", 4)


def test_rpr102_entropy_import():
    v = one("from uuid import uuid4\n")
    assert (v.code, v.line) == ("RPR102", 1)


def test_rpr102_cli_layer_is_exempt():
    clean("""\
        import time

        def elapsed():
            return time.perf_counter()
        """, path="src/repro/cli.py")


def test_rpr103_id_as_sort_key():
    v = one("def order(xs):\n    return sorted(xs, key=id)\n")
    assert (v.code, v.line) == ("RPR103", 2)


def test_rpr103_id_in_sort_method_lambda():
    v = one("def order(xs):\n    xs.sort(key=lambda o: id(o))\n")
    assert (v.code, v.line) == ("RPR103", 2)


def test_rpr103_id_as_dict_key():
    v = one("def index(x):\n    return {id(x): x}\n")
    assert (v.code, v.line) == ("RPR103", 2)


def test_rpr103_clean_stable_key():
    clean("""\
        def order(xs):
            xs.sort(key=lambda o: o.packet_id)
            return {x.packet_id: x for x in xs}
        """)


def test_rpr104_json_dumps_without_sort_keys():
    v = one("import json\n\npayload = json.dumps([1, 2])\n")
    assert (v.code, v.line) == ("RPR104", 3)


def test_rpr104_clean_and_kwargs_forwarding():
    clean("""\
        import json

        def render(doc, **kw):
            canonical = json.dumps(doc, sort_keys=True)
            forwarded = json.dumps(doc, **kw)
            return canonical, forwarded
        """)


# ---------------------------------------------------------------------------
# RPR2xx null-object parity
# ---------------------------------------------------------------------------


def test_rpr202_unguarded_hook_call():
    v = one("""\
        def rx(rec, pkt):
            rec.record(0, "sim", "mac_in", 1, None)
        """)
    assert (v.code, v.line) == ("RPR202", 2)


def test_rpr202_guarded_forms_are_clean():
    clean("""\
        def direct(rec, sim, pkt):
            if rec.enabled:
                rec.record(sim.now, "sim", "mac_in", 1, None)

        def aliased(rec, sim, pkt):
            observing = rec.enabled
            if observing:
                rec.account("pentium", "busy", 4.0)

        def short_circuit(inj, pair):
            return inj.enabled and inj.on_i2o_send(pair)
        """)


def test_rpr203_eager_payload_before_guard():
    v = one("""\
        def rx(rec, pkt):
            detail = {"len": pkt.length}
            if rec.enabled:
                rec.record(0, "sim", "mac_in", 1, detail)
        """)
    assert (v.code, v.line) == ("RPR203", 2)
    assert "detail" in v.message


def test_rpr203_construction_inside_guard_is_clean():
    clean("""\
        def rx(rec, pkt):
            if rec.enabled:
                detail = {"len": pkt.length}
                rec.record(0, "sim", "mac_in", 1, detail)
        """)


class _Live:
    enabled = True

    def record(self, kind, detail, severity="yellow"):
        return {"kind": kind}

    def count(self, kind, n=1):
        pass

    def snapshot(self):
        return {}


class _NullMissing:
    enabled = False

    def record(self, kind, detail, severity="yellow"):
        return {}


class _NullDrifted:
    enabled = False

    def record(self, kind, detail):  # lost ``severity``
        return {}

    def count(self, kind, n):  # lost the default on ``n``
        pass

    def snapshot(self):
        return {}


class _NullCatchAll:
    enabled = False

    def record(self, *args, **kwargs):
        return {}

    def count(self, *args, **kwargs):
        pass

    def snapshot(self):
        return {}


def test_rpr201_missing_null_method_cites_call_site():
    out = check_null_parity(_Live, _NullMissing,
                            {"count": ("src/repro/x.py", 42)})
    assert [v.code for v in out] == ["RPR201"]
    assert "count" in out[0].message
    assert "src/repro/x.py:42" in out[0].message


def test_rpr204_signature_drift():
    out = check_null_parity(_Live, _NullDrifted, {})
    assert [v.code for v in out] == ["RPR204", "RPR204"]
    messages = " / ".join(v.message for v in out)
    assert "severity" in messages and "default" in messages


def test_parity_accepts_catch_all_and_real_classes():
    assert check_null_parity(_Live, _NullCatchAll, {"count": ("x.py", 1)}) == []

    from repro.faults.injector import FaultInjector, NullInjector
    from repro.obs.metrics import MetricsSampler, NullSampler
    from repro.obs.recorder import NullRecorder, Recorder
    assert check_null_parity(Recorder, NullRecorder, {}) == []
    assert check_null_parity(FaultInjector, NullInjector, {}) == []
    assert check_null_parity(MetricsSampler, NullSampler, {}) == []


# ---------------------------------------------------------------------------
# RPR3xx trace/schema registry
# ---------------------------------------------------------------------------


def test_rpr301_unregistered_event():
    v = one("""\
        def rx(rec, pkt):
            if rec.enabled:
                rec.record(0, "sim", "warp_drive", 1, None)
        """)
    assert (v.code, v.line) == ("RPR301", 3)
    assert "warp_drive" in v.message


def test_rpr302_unregistered_component():
    v = one("""\
        def rx(rec, pkt):
            if rec.enabled:
                rec.record(0, "flux_capacitor", "mac_in", 1, None)
        """)
    assert (v.code, v.line) == ("RPR302", 3)


def test_rpr301_302_clean_registered_literals():
    clean("""\
        def rx(rec, sim, pkt, ok):
            if rec.enabled:
                rec.record(sim.now, "me0.ctx1", "mac_in" if ok else "drop",
                           1, None)
        """)


def test_rpr303_hardcoded_stage_list():
    v = one('STAGES = ("mac_in", "classify", "enqueue", "mac_out")\n')
    assert (v.code, v.line) == ("RPR303", 1)


def test_rpr303_registry_import_is_clean():
    clean("""\
        from repro.obs.events import LIFECYCLE_EVENTS

        STAGES = LIFECYCLE_EVENTS
        MIXED = ("mac_in", "not_an_event", "drop")
        SHORT = ("mac_in", "drop")
        """)


def test_rpr304_unregistered_monitor_rule():
    from repro.lint.tracenames import check_monitor_rules
    from repro.obs import monitor

    rogue = type("RogueRule", (monitor.Rule,), {"name": "warp-budget"})
    rogue.__module__ = monitor.__name__
    try:
        out = [v for v in check_monitor_rules(LintContext())
               if v.code == "RPR304"]
        assert len(out) == 1
        assert "warp-budget" in out[0].message
    finally:
        del rogue
        gc.collect()  # drop the fixture subclass from Rule.__subclasses__


def test_rpr305_unregistered_literal():
    v = one("""\
        def probe(sampler, cycle):
            if sampler.enabled:
                sampler.sample("net.warp_factor", cycle, 1.0)
        """)
    assert (v.code, v.line) == ("RPR305", 3)
    assert "net.warp_factor" in v.message


def test_rpr305_unregistered_fstring_template():
    v = one("""\
        def probe(sampler, link, cycle):
            if sampler.enabled:
                sampler.sample(f"link.{link.name}.wobble", cycle, 1.0)
        """)
    assert (v.code, v.line) == ("RPR305", 3)
    assert "link.x.wobble" in v.message


def test_rpr305_split_prefix_template_fails():
    """A template whose placeholder could straddle a ``.`` boundary
    (``f"{prefix}.occupancy"``) cannot be resolved: the collapsed form
    ``x.occupancy`` matches no family, so the lint forces probe authors
    to spell the family prefix inline."""
    v = one("""\
        def probe(sampler, prefix, cycle):
            if sampler.enabled:
                sampler.sample(f"{prefix}.occupancy", cycle, 1.0)
        """)
    assert (v.code, v.line) == ("RPR305", 3)


def test_rpr305_clean_registered_names():
    clean("""\
        def probe(sampler, link, node, cycle):
            if sampler.enabled:
                sampler.sample("net.links_down", cycle, 1.0)
                sampler.sample(f"link.{link.name}.occupancy", cycle, 0.5)
                sampler.sample(f"router.{node.name}.queue_depth", cycle, 0.25)
        """)


def test_rpr305_fires_via_metrics_attr_receiver():
    v = one("""\
        def poke(topo, cycle):
            if topo.metrics.enabled:
                topo.metrics.sample("bogus.series", cycle, 1.0)
        """)
    assert v.code == "RPR305"


def test_registry_helpers():
    assert events.is_trace_event("mac_in")
    assert not events.is_trace_event("warp_drive")
    assert events.is_component("strongarm")
    assert events.is_component("me3.ctx1") and events.is_component("queue12")
    assert events.is_metric_series("net.incidents")
    assert events.is_metric_series("link.r1-r2.occupancy")
    assert events.is_metric_series("router.r3.spf_runs")
    assert not events.is_metric_series("link.r1-r2.wobble")
    assert not events.is_metric_series("net.warp_factor")
    assert events.unregistered_metric_series(
        ["net.incidents", "bogus", "bogus", "link.a.up"]) == ["bogus"]
    assert not events.is_component("me3.ctx")  # pattern must match fully
    assert events.unregistered_events(["mac_in", "bogus"]) == ["bogus"]


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def test_line_suppression():
    clean("""\
        import random

        def jitter():
            return random.choice([1, 2])  # repro-lint: disable=RPR101
        """)


def test_line_suppression_is_line_scoped():
    source = dedent("""\
        import random

        a = random.choice([1])  # repro-lint: disable=RPR101
        b = random.choice([2])
        """)
    violations = lint_source(source, PLAIN)
    assert [(v.code, v.line) for v in violations] == [("RPR101", 4)]


def test_file_suppression():
    clean("""\
        # repro-lint: file-disable=RPR202
        def rx(rec, pkt):
            rec.record(0, "sim", "mac_in", 1, None)
        """)


def test_suppression_does_not_hide_other_codes():
    source = dedent("""\
        import json

        def jitter(xs):
            return sorted(xs, key=id)  # repro-lint: disable=RPR104
        """)
    violations = lint_source(source, PLAIN)
    assert [v.code for v in violations] == ["RPR103"]


# ---------------------------------------------------------------------------
# Baseline ratchet
# ---------------------------------------------------------------------------

BAD_MODULE = dedent("""\
    import random

    def jitter():
        return random.choice([1, 2])
    """)


def test_baseline_round_trip(tmp_path):
    violations = lint_source(BAD_MODULE, "pkg/mod.py")
    assert [v.code for v in violations] == ["RPR101"]

    bl = tmp_path / "bl.json"
    write_baseline(violations, str(bl))
    fresh, baselined, stale = apply_baseline(violations, load_baseline(str(bl)))
    assert fresh == [] and baselined == 1 and stale == []

    # A *new* violation in the same file is not covered by the ratchet,
    # even though an RPR101 entry exists (counts are per path+code).
    worse = lint_source(BAD_MODULE + "\nextra = random.random()\n",
                        "pkg/mod.py")
    fresh, baselined, stale = apply_baseline(worse, load_baseline(str(bl)))
    assert baselined == 1
    assert [v.code for v in fresh] == ["RPR101"]


def test_baseline_reports_stale_entries(tmp_path):
    bl = tmp_path / "bl.json"
    write_baseline(lint_source(BAD_MODULE, "pkg/mod.py"), str(bl))
    fresh, baselined, stale = apply_baseline([], load_baseline(str(bl)))
    assert fresh == [] and baselined == 0
    assert stale == ["pkg/mod.py: RPR101 x1"]


# ---------------------------------------------------------------------------
# CLI front-end
# ---------------------------------------------------------------------------


def test_cli_exit_codes_and_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_MODULE)
    good = tmp_path / "good.py"
    good.write_text("VALUE = 1\n")

    assert run_lint([str(good)]) == 0
    capsys.readouterr()

    assert run_lint([str(bad)], json_out=True) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is False
    assert doc["checked_files"] == 1
    assert doc["counts"] == {"RPR101": 1}
    assert doc["violations"][0]["line"] == 4

    assert run_lint([str(tmp_path / "missing.py")]) == 2


def test_cli_baseline_flow(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_MODULE)
    bl = tmp_path / "bl.json"

    assert run_lint([str(bad)], write_baseline_path=str(bl)) == 0
    assert run_lint([str(bad)], baseline_path=str(bl)) == 0
    capsys.readouterr()
    assert run_lint([str(bad)], json_out=True, baseline_path=str(bl)) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True and doc["baselined"] == 1


def test_rule_table_covers_every_code():
    table = rule_table()
    for code in RULES:
        assert code in table


# ---------------------------------------------------------------------------
# Self-check: the repository's own tree lints clean
# ---------------------------------------------------------------------------


def test_repo_src_is_clean():
    assert os.path.isdir(REPO_SRC)
    assert lint_paths([REPO_SRC]) == []


def test_committed_baseline_is_empty():
    baseline = Path(REPO_SRC).parent / "lint-baseline.json"
    doc = json.loads(baseline.read_text())
    assert doc == {"version": 1, "violations": []}
