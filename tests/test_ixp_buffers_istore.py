"""Tests for the circular buffer allocator and the instruction store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ixp.buffers import BufferPool
from repro.ixp.istore import WRITE_CYCLES_PER_INSTRUCTION, InstructionStore, IStoreError


# -- BufferPool ---------------------------------------------------------------


def test_alloc_is_circular():
    pool = BufferPool(buffer_count=4, buffer_bytes=2048)
    handles = [pool.alloc() for __ in range(6)]
    assert [h.index for h in handles] == [0, 1, 2, 3, 0, 1]


def test_read_write_roundtrip():
    pool = BufferPool(buffer_count=8)
    handle = pool.alloc()
    assert pool.write(handle, "payload")
    assert pool.read(handle) == "payload"


def test_one_pass_lifetime():
    """A buffer is valid until the ring wraps back to it: exactly one pass
    (the paper's 'interesting property')."""
    pool = BufferPool(buffer_count=4)
    handle = pool.alloc(contents="old")
    for __ in range(pool.lifetime_allocations() - 1):
        assert pool.is_valid(handle)
        pool.alloc()
    # The next allocation reuses the slot.
    pool.alloc()
    assert not pool.is_valid(handle)
    assert pool.read(handle) is None
    assert pool.stale_reads == 1
    assert not pool.write(handle, "new")


def test_oversized_packet_rejected():
    pool = BufferPool(buffer_bytes=2048)
    with pytest.raises(ValueError):
        pool.alloc(size=2049)
    # A maximal 1518-byte Ethernet frame must fit.
    pool.alloc(size=1518)


def test_bad_dimensions_rejected():
    with pytest.raises(ValueError):
        BufferPool(buffer_count=0)
    with pytest.raises(ValueError):
        BufferPool(buffer_bytes=0)


@settings(max_examples=50, deadline=None)
@given(count=st.integers(2, 64), extra=st.integers(0, 200))
def test_lifetime_property(count, extra):
    """For any pool size: a handle survives exactly ``count - 1`` further
    allocations and dies on the ``count``-th."""
    pool = BufferPool(buffer_count=count)
    handle = pool.alloc()
    for i in range(count - 1):
        assert pool.is_valid(handle), f"died early at {i}"
        pool.alloc()
    pool.alloc()
    assert not pool.is_valid(handle)


# -- InstructionStore ------------------------------------------------------------


def test_istore_default_extension_budget():
    store = InstructionStore(capacity=1024, fixed_instructions=374)
    assert store.extension_capacity == 650
    assert store.free_slots == 650


def test_per_flow_install_grows_up():
    store = InstructionStore()
    a = store.install_per_flow("splicer", 45)
    b = store.install_per_flow("dropper", 28)
    assert b == a + 45
    assert store.used_by_extensions == 73


def test_general_install_grows_down_and_chains():
    store = InstructionStore(capacity=1024, fixed_instructions=374)
    ip = store.install_general("ip", 32)
    monitor = store.install_general("syn-monitor", 5)
    assert ip == 1024 - 32
    assert monitor == ip - 5
    # Fall-through order: most recently installed runs first.
    assert store.general_chain() == ["syn-monitor", "ip"]


def test_install_charges_write_cycles():
    store = InstructionStore()
    store.install_per_flow("f", 10)
    # "adding a 10-instruction forwarder to the ISTORE takes 800 cycles"
    assert store.write_cycles_total == 800
    assert WRITE_CYCLES_PER_INSTRUCTION * 10 == 800


def test_full_reload_cost():
    store = InstructionStore(capacity=1024)
    cycles = store.full_reload()
    # "rewriting the entire ISTORE takes over 80,000 cycles"
    assert cycles >= 80_000
    assert store.reload_count == 1


def test_capacity_enforced():
    store = InstructionStore(capacity=1024, fixed_instructions=374)
    store.install_per_flow("big", 600)
    with pytest.raises(IStoreError):
        store.install_general("too-big", 100)
    store.install_general("fits", 50)
    assert store.free_slots == 0


def test_duplicate_names_rejected():
    store = InstructionStore()
    store.install_per_flow("f", 10)
    with pytest.raises(IStoreError):
        store.install_general("f", 10)


def test_remove_compacts_and_charges():
    store = InstructionStore()
    store.install_per_flow("a", 10)
    store.install_per_flow("b", 20)
    store.install_per_flow("c", 30)
    before = store.write_cycles_total
    store.remove("a")
    # b and c (50 instructions) must be rewritten.
    assert store.write_cycles_total - before == 50 * WRITE_CYCLES_PER_INSTRUCTION
    assert store.offset_of("b") == store.ext_base
    assert store.offset_of("c") == store.ext_base + 20
    with pytest.raises(IStoreError):
        store.offset_of("a")


def test_remove_unknown_rejected():
    with pytest.raises(IStoreError):
        InstructionStore().remove("ghost")


def test_installed_listing():
    store = InstructionStore()
    store.install_per_flow("pf", 10)
    store.install_general("gen", 5)
    listing = store.installed()
    assert listing["pf"][2] == "per_flow"
    assert listing["gen"][2] == "general"


def test_zero_length_rejected():
    with pytest.raises(IStoreError):
        InstructionStore().install_per_flow("empty", 0)
