"""Tests for the PCI bus and I2O queue pairs."""

import pytest

from repro.engine import Simulator
from repro.hosts.pci import (
    EAGER_BYTES,
    I2OMessage,
    I2OQueuePair,
    PCIBus,
    pci_transfer_cycles,
)


def test_transfer_cycles_match_bus_bandwidth():
    # 32-bit x 33 MHz = 1.056 Gbps; 72 bytes -> ~109 cycles at 200 MHz.
    assert pci_transfer_cycles(72) == 110
    assert pci_transfer_cycles(1500) == pytest.approx(1500 * 8 / 1.056e9 * 200e6, abs=1)
    assert pci_transfer_cycles(0) == 0


def test_negative_transfer_rejected():
    with pytest.raises(ValueError):
        pci_transfer_cycles(-1)


def test_eager_bytes_is_64_plus_8():
    # "we move just the first 64-bytes across the PCI bus, along with an
    # 8-byte internal routing header"
    assert EAGER_BYTES == 72


def test_bus_serializes_transfers():
    sim = Simulator()
    bus = PCIBus(sim)
    done = []

    def mover(i):
        yield from bus.transfer(72)
        done.append((i, sim.now))

    sim.spawn(mover(0))
    sim.spawn(mover(1))
    sim.run()
    assert done[0][1] == 110
    assert done[1][1] == 220
    assert bus.bytes_moved == 144
    assert bus.utilization(220) == pytest.approx(1.0)


def make_message():
    return I2OMessage(packet=None, eager_bytes=72, body_bytes=0, flow_metadata={})


def test_i2o_send_receive_roundtrip():
    pair = I2OQueuePair(depth=4)
    message = make_message()
    assert pair.try_send(message)
    assert pair.occupancy == 1
    assert pair.try_receive() is message
    assert pair.occupancy == 0
    assert pair.try_receive() is None


def test_i2o_backpressure_when_free_exhausted():
    pair = I2OQueuePair(depth=2)
    assert pair.try_send(make_message())
    assert pair.try_send(make_message())
    assert not pair.try_send(make_message())
    assert pair.backpressure_events == 1
    # Receiving recycles a buffer; sending works again.
    pair.try_receive()
    assert pair.try_send(make_message())


def test_i2o_buffers_recycle_in_order():
    pair = I2OQueuePair(depth=2)
    pair.try_send(make_message())
    first_id = pair.full[0][0]
    pair.try_receive()
    pair.try_send(make_message())
    pair.try_send(make_message())
    ids = [entry[0] for entry in pair.full]
    assert first_id in ids  # the recycled buffer is reused


def test_i2o_bad_depth():
    with pytest.raises(ValueError):
        I2OQueuePair(depth=0)
