"""Campaign-level acceptance tests: the `repro faults` scenarios hold
their invariants, and the invariants are the PR's acceptance criteria
(fast path within 1% under a Pentium crash; watchdog quarantine within
a bounded packet count) asserted here as well as by the campaign exit
code CI checks.
"""

import json

import pytest

from repro.faults.campaign import (
    QUARANTINE_PACKET_BOUND,
    SCENARIOS,
    run_campaign,
)


def _one(name, seed=0, **kw):
    results = run_campaign(name, seed=seed, **kw)
    assert len(results) == 1
    return results[0]


def _invariant(result, name):
    return next(inv for inv in result.invariants if inv["name"] == name)


def test_pentium_crash_fast_path_within_one_percent():
    """The acceptance criterion: the MicroEngine fast path holds its
    baseline rate within 1% while the Pentium is down and rebooting."""
    result = _one("pentium-crash")
    assert result.ok, result.invariants
    assert result.exit_code() == 0
    iso = _invariant(result, "fastpath-isolation")
    assert iso["ok"], iso["detail"]
    assert _invariant(result, "crash-and-restart")["ok"]
    assert _invariant(result, "slow-path-resumes")["ok"]
    # The crash actually happened.
    assert result.fault_counts.get("pentium-crash") == 1
    assert result.fault_counts.get("pentium-restart") == 1


def test_vrp_overrun_quarantine_is_bounded():
    """The other acceptance criterion: a budget-overrunning forwarder is
    quarantined within a bounded number of packets and forwarding
    continues."""
    result = _one("vrp-overrun")
    assert result.ok, result.invariants
    bounded = _invariant(result, "quarantine-bounded")
    assert bounded["ok"], bounded["detail"]
    quarantines = [i for i in result.incidents if i["kind"] == "vrp-quarantine"]
    assert len(quarantines) == 1
    assert quarantines[0]["packets_matched"] <= QUARANTINE_PACKET_BOUND
    assert result.fault_counts.get("vrp-quarantine") == 1


def test_strongarm_crash_scenario_holds():
    result = _one("strongarm-crash")
    assert result.ok, result.invariants


def test_link_flap_scenario_holds():
    result = _one("link-flap")
    assert result.ok, result.invariants
    assert result.fault_counts.get("link-drop", 0) > 0
    assert _invariant(result, "no-silent-corruption")["ok"]


def test_memory_stress_scenario_holds():
    result = _one("memory-stress")
    assert result.ok, result.invariants
    assert _invariant(result, "all-faults-fired")["ok"]


def test_i2o_storm_scenario_holds():
    result = _one("i2o-storm")
    assert result.ok, result.invariants
    assert _invariant(result, "loss-accounted")["ok"]


@pytest.mark.slow
@pytest.mark.parametrize("seed", [7, 42])
def test_all_scenarios_hold_across_seeds(seed):
    for result in run_campaign("all", seed=seed):
        assert result.ok, (result.scenario, result.invariants)


def test_unknown_scenario_names_the_valid_set():
    with pytest.raises(ValueError) as err:
        run_campaign("bit-rot")
    message = str(err.value)
    for name in SCENARIOS:
        assert name in message
    assert "all" in message


def test_incident_log_json_is_canonical():
    result = _one("link-flap")
    blob = result.incident_log_json()
    decoded = json.loads(blob)
    assert decoded["scenario"] == "link-flap"
    assert decoded["ok"] is True
    assert decoded["seed"] == 0
    # Canonical form: sorted keys, so byte-comparison across runs works.
    assert list(decoded) == sorted(decoded)
    names = [inv["name"] for inv in decoded["invariants"]]
    assert "no-silent-corruption" in names
