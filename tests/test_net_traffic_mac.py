"""Tests for traffic generators and the MAC port model."""

import pytest

from repro.engine import Simulator
from repro.net import IPv4Address, MACPort, PortSpeed
from repro.net.mac import EVALUATION_BOARD_PORTS, make_board_ports
from repro.net.traffic import (
    address_for_port,
    exceptional_mix,
    flow_mix,
    flow_stream,
    round_robin_merge,
    single_port_flood,
    standard_table,
    syn_flood,
    take,
    uniform_flood,
)


def test_standard_table_maps_ports():
    table = standard_table()
    for port in range(10):
        addr = IPv4Address(address_for_port(port, host=42))
        assert table.lookup(addr).out_port == port


def test_uniform_flood_round_robins_ports():
    table = standard_table()
    packets = take(uniform_flood(16, num_ports=8), 16)
    ports = [table.lookup(p.ip.dst).out_port for p in packets]
    assert ports == list(range(8)) * 2
    assert all(p.frame_len == 64 for p in packets)


def test_uniform_flood_is_deterministic_per_seed():
    a = [p.ip.src for p in uniform_flood(10, seed=7)]
    b = [p.ip.src for p in uniform_flood(10, seed=7)]
    c = [p.ip.src for p in uniform_flood(10, seed=8)]
    assert a == b
    assert a != c


def test_single_port_flood_targets_one_queue():
    table = standard_table()
    packets = take(single_port_flood(10, out_port=5), 10)
    assert {table.lookup(p.ip.dst).out_port for p in packets} == {5}


def test_flow_stream_sequences_advance():
    packets = take(flow_stream(5, payload_len=100, start_seq=1000), 5)
    assert [p.tcp.seq for p in packets] == [1000, 1100, 1200, 1300, 1400]
    keys = {p.flow_key() for p in packets}
    assert len(keys) == 1


def test_syn_flood_all_syn_random_sources():
    packets = take(syn_flood(50), 50)
    assert all(p.tcp.flags & 0x02 for p in packets)
    assert len({p.ip.src for p in packets}) > 25


def test_exceptional_mix_fraction():
    packets = take(exceptional_mix(400, exceptional_fraction=0.25), 400)
    exceptional = sum(1 for p in packets if p.has_ip_options)
    assert 60 <= exceptional <= 140  # ~100 expected
    with pytest.raises(ValueError):
        next(exceptional_mix(1, exceptional_fraction=1.5))


def test_flow_mix_only_uses_given_flows():
    flows = [("1.1.1.1", 10, "10.1.0.1", 80), ("2.2.2.2", 20, "10.2.0.1", 443)]
    packets = take(flow_mix(30, flows), 30)
    seen = {(str(p.ip.src), p.tcp.src_port) for p in packets}
    assert seen <= {("1.1.1.1", 10), ("2.2.2.2", 20)}


def test_round_robin_merge_interleaves():
    a = flow_stream(2, src_port=1)
    b = flow_stream(4, src_port=2)
    ports = [p.tcp.src_port for p in round_robin_merge(a, b)]
    assert ports == [1, 2, 1, 2, 2, 2]


# -- MAC ports ----------------------------------------------------------------


def test_board_has_eight_fast_two_gig_ports():
    assert len(EVALUATION_BOARD_PORTS) == 10
    sim = Simulator()
    ports = make_board_ports(sim)
    assert sum(1 for p in ports if p.speed is PortSpeed.MBPS_100) == 8
    assert sum(1 for p in ports if p.speed is PortSpeed.GBPS_1) == 2


def test_frame_cycles_matches_line_speed():
    sim = Simulator()
    port = MACPort(sim, 0, PortSpeed.MBPS_100, clock_hz=200e6)
    # 64B frame + 20B overhead = 672 bits at 100 Mbps = 6.72 us = 1344 cycles.
    assert port.frame_cycles(64) == 1344
    gig = MACPort(sim, 8, PortSpeed.GBPS_1, clock_hz=200e6)
    assert gig.frame_cycles(64) == 134


def test_rx_pacing_at_line_speed():
    sim = Simulator()
    port = MACPort(sim, 0, PortSpeed.MBPS_100, clock_hz=200e6, rx_buffer_mps=10_000)
    port.attach_source(uniform_flood(10, num_ports=1))
    sim.run()
    assert port.stats.counter("rx_packets").value == 10
    # 10 min-sized frames at 100 Mbps -> 13440 cycles.
    assert sim.now == 13_440


def test_rx_buffer_overflow_drops():
    sim = Simulator()
    port = MACPort(sim, 0, rx_buffer_mps=2)
    packets = take(uniform_flood(3, num_ports=1), 3)
    assert port.deliver(packets[0])
    assert port.deliver(packets[1])
    assert not port.deliver(packets[2])  # buffer full -> drop
    assert port.stats.counter("rx_dropped_packets").value == 1


def test_port_rdy_and_take_mp():
    sim = Simulator()
    port = MACPort(sim, 3)
    assert not port.port_rdy()
    packet = take(uniform_flood(1, num_ports=1), 1)[0]
    port.deliver(packet)
    assert port.port_rdy()
    mp = port.take_mp()
    assert mp.port == 3
    assert not port.port_rdy()


def test_tx_reassembles_and_counts():
    sim = Simulator()
    port = MACPort(sim, 0)
    packet = take(uniform_flood(1, num_ports=1), 1)[0]
    from repro.net import segment_packet

    for mp in segment_packet(packet):
        port.put_mp(mp)
    assert port.tx_count == 1
    assert port.transmitted == [packet]
