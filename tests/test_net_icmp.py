"""Tests for ICMP error generation and the router's TTL-exceeded path."""

import pytest

from repro import Router, RouterConfig
from repro.net import IPv4Address
from repro.net.icmp import (
    ICMPMessage,
    TYPE_DEST_UNREACHABLE,
    TYPE_TIME_EXCEEDED,
    destination_unreachable,
    parse_reply,
    time_exceeded,
)
from repro.net.packet import Packet, make_tcp_packet


def test_icmp_message_roundtrip():
    message = ICMPMessage(TYPE_TIME_EXCEEDED, 0, quoted=b"\x45\x00" + b"\x00" * 26)
    parsed = ICMPMessage.parse(message.packed())
    assert parsed.icmp_type == TYPE_TIME_EXCEEDED
    assert parsed.quoted == message.quoted


def test_icmp_checksum_detected():
    wire = bytearray(ICMPMessage(TYPE_TIME_EXCEEDED, 0).packed())
    wire[0] ^= 0xFF
    with pytest.raises(ValueError):
        ICMPMessage.parse(bytes(wire))


def test_icmp_validation():
    with pytest.raises(ValueError):
        ICMPMessage(300, 0)
    with pytest.raises(ValueError):
        ICMPMessage(11, 0, rest=b"\x00")
    with pytest.raises(ValueError):
        ICMPMessage.parse(b"\x0b\x00")


def test_time_exceeded_quotes_original():
    original = make_tcp_packet("192.168.1.5", "10.1.0.1", 5001, 80, ttl=1)
    router_addr = IPv4Address("10.255.255.1")
    reply = time_exceeded(original, router_addr)
    assert reply.ip.src == router_addr
    assert reply.ip.dst == original.ip.src
    message = parse_reply(reply)
    assert message.icmp_type == TYPE_TIME_EXCEEDED
    # Quoted bytes start with the original IP header.
    assert message.quoted[:1] == b"\x45"
    # Original source/destination visible in the quote (offsets 12/16).
    assert message.quoted[12:16] == original.ip.src.packed()
    # The first 8 L4 bytes (TCP ports + seq) are quoted too.
    assert message.quoted[20:22] == (5001).to_bytes(2, "big")


def test_destination_unreachable_type():
    original = make_tcp_packet("1.1.1.1", "2.2.2.2")
    reply = destination_unreachable(original, IPv4Address("9.9.9.9"))
    assert parse_reply(reply).icmp_type == TYPE_DEST_UNREACHABLE


def test_parse_reply_non_icmp_is_none():
    assert parse_reply(make_tcp_packet("1.1.1.1", "2.2.2.2")) is None


def test_icmp_reply_survives_wire_roundtrip():
    original = make_tcp_packet("192.168.1.5", "10.1.0.1", ttl=1)
    reply = time_exceeded(original, IPv4Address("10.255.255.1"))
    parsed = Packet.from_bytes(reply.to_bytes())
    assert parse_reply(parsed).icmp_type == TYPE_TIME_EXCEEDED


def test_router_generates_time_exceeded_when_enabled():
    router = Router(RouterConfig(generate_icmp_errors=True))
    for port in range(10):
        router.add_route(f"10.{port}.0.0", 16, port)
    router.add_route("192.168.0.0", 16, 5)  # route back to the sender
    dying = make_tcp_packet("192.168.1.5", "10.1.0.1", ttl=1)
    router.warm_route_cache([dying.ip.dst, dying.ip.src])
    router.inject(0, iter([dying]))
    router.run(2_000_000)
    # The original never came out; an ICMP error went back toward the
    # sender's network (port 5).
    replies = router.transmitted(5)
    assert len(replies) == 1
    message = parse_reply(replies[0])
    assert message is not None and message.icmp_type == TYPE_TIME_EXCEEDED
    assert router.stats()["exceptional"] == 1


def test_router_default_still_drops_silently():
    router = Router()  # extension off by default (paper behaviour)
    router.add_route("10.1.0.0", 16, 1)
    dying = make_tcp_packet("192.168.1.5", "10.1.0.1", ttl=1)
    router.warm_route_cache([dying.ip.dst])
    router.inject(0, iter([dying]))
    router.run(1_000_000)
    assert router.stats()["vrp_dropped"] == 1
    assert len(router.transmitted()) == 0
