"""Tests for packet queues, the queue bank and discipline wiring."""

import pytest

from repro.ixp.buffers import BufferHandle
from repro.ixp.queues import (
    InputDiscipline,
    OutputDiscipline,
    PacketDescriptor,
    PacketQueue,
    QueueBank,
)


def descriptor(port=0):
    return PacketDescriptor(BufferHandle(0, 1), None, 1, port, 0)


def test_queue_fifo_order():
    queue = PacketQueue(0, 0, capacity=8)
    descs = [descriptor() for __ in range(3)]
    for d in descs:
        assert queue.enqueue(d)
    assert [queue.dequeue() for __ in range(3)] == descs
    assert queue.dequeue() is None


def test_queue_drop_when_full():
    queue = PacketQueue(0, 0, capacity=2)
    assert queue.enqueue(descriptor())
    assert queue.enqueue(descriptor())
    assert not queue.enqueue(descriptor())
    assert queue.dropped == 1
    assert queue.enqueued == 2


def test_queue_depth_tracking():
    queue = PacketQueue(0, 0, capacity=8)
    for __ in range(5):
        queue.enqueue(descriptor())
    queue.dequeue()
    assert len(queue) == 4
    assert queue.max_depth == 5


def test_protected_bank_single_queue_per_port():
    bank = QueueBank(
        InputDiscipline.PROTECTED, OutputDiscipline.SINGLE_BATCHED,
        num_ports=8, num_input_contexts=16,
    )
    assert len(bank.queues) == 8
    q0 = bank.input_queue_for(0)
    q0_again = bank.input_queue_for(0, input_context=7)
    assert q0 is q0_again  # shared public queue


def test_multi_indirect_bank_has_priority_queues():
    bank = QueueBank(
        InputDiscipline.PROTECTED, OutputDiscipline.MULTI_INDIRECT,
        num_ports=4, num_input_contexts=16, queues_per_port=4,
    )
    assert len(bank.queues) == 16
    priorities = {q.priority for q in bank.queues_for_port(0)}
    assert priorities == {0, 1, 2, 3}


def test_private_bank_one_queue_per_context_port_pair():
    bank = QueueBank(
        InputDiscipline.PRIVATE, OutputDiscipline.MULTI_INDIRECT,
        num_ports=8, num_input_contexts=16,
    )
    assert len(bank.queues) == 128
    a = bank.input_queue_for(3, input_context=0)
    b = bank.input_queue_for(3, input_context=1)
    assert a is not b
    assert a.out_port == b.out_port == 3


def test_private_requires_multi_output():
    with pytest.raises(ValueError):
        QueueBank(
            InputDiscipline.PRIVATE, OutputDiscipline.SINGLE_BATCHED,
            num_ports=8, num_input_contexts=16,
        )


def test_max_16_queues_per_port():
    # "this restricts the number of queues that each context can service
    # to a maximum of 16, the number of available registers"
    with pytest.raises(ValueError):
        QueueBank(
            InputDiscipline.PROTECTED, OutputDiscipline.MULTI_INDIRECT,
            num_ports=2, num_input_contexts=16, queues_per_port=17,
        )


def test_select_queue_priority_order():
    bank = QueueBank(
        InputDiscipline.PROTECTED, OutputDiscipline.MULTI_INDIRECT,
        num_ports=1, num_input_contexts=4, queues_per_port=3,
    )
    low = bank.queues_for_port(0)[2]
    high = bank.queues_for_port(0)[0]
    bank.enqueue(low, descriptor())
    bank.enqueue(high, descriptor())
    # Priority 0 drains first (the paper's implemented policy).
    assert bank.select_queue(0) is high
    bank.dequeue(high)
    assert bank.select_queue(0) is low


def test_ready_bits_follow_occupancy():
    bank = QueueBank(
        InputDiscipline.PROTECTED, OutputDiscipline.MULTI_INDIRECT,
        num_ports=1, num_input_contexts=4, queues_per_port=2,
    )
    queue = bank.queues_for_port(0)[0]
    assert bank.select_via_bits(0) is None
    bank.enqueue(queue, descriptor())
    assert bank.ready_bits[queue.queue_id]
    assert bank.select_via_bits(0) is queue
    bank.dequeue(queue)
    assert not bank.ready_bits[queue.queue_id]
    assert bank.select_via_bits(0) is None


def test_bank_totals():
    bank = QueueBank(
        InputDiscipline.PROTECTED, OutputDiscipline.SINGLE_BATCHED,
        num_ports=2, num_input_contexts=4, capacity=1,
    )
    queue = bank.input_queue_for(0)
    bank.enqueue(queue, descriptor())
    bank.enqueue(queue, descriptor())  # dropped: capacity 1
    bank.dequeue(queue)
    assert bank.total_enqueued == 1
    assert bank.total_dequeued == 1
    assert bank.total_dropped == 1
