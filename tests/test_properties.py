"""Property-based tests on core invariants (hypothesis).

These complement the per-module unit tests with randomized checks of the
data structures the router's correctness rests on: the event queue's
ordering, queue conservation, the stride scheduler's fairness bounds,
packet codec roundtrips, the VRP cost algebra, and the ISTORE layout.
"""

from hypothesis import given, settings, strategies as st

from repro.core.vrp import HashOp, RegOps, SramRead, SramWrite, VRPProgram
from repro.engine import Delay, Simulator
from repro.hosts.scheduling import StrideScheduler
from repro.ixp.istore import InstructionStore, IStoreError
from repro.ixp.queues import PacketQueue
from repro.net.packet import Packet, make_tcp_packet


# -- simulator ordering --------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(delays=st.lists(st.integers(0, 1000), min_size=1, max_size=40))
def test_events_fire_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, __ in fired]
    assert times == sorted(times)
    assert all(t == d for t, d in fired)
    assert len(fired) == len(delays)


@settings(max_examples=40, deadline=None)
@given(busy=st.lists(st.integers(1, 50), min_size=1, max_size=12))
def test_resource_serializes_total_time(busy):
    """A capacity-1 resource serializes: completion = sum of hold times."""
    sim = Simulator()
    resource = sim.resource(capacity=1)

    def user(hold):
        yield resource.acquire()
        yield Delay(hold)
        resource.release()

    for hold in busy:
        sim.spawn(user(hold))
    sim.run()
    assert sim.now == sum(busy)


# -- queue conservation ------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(1, 32),
    ops=st.lists(st.booleans(), max_size=100),  # True=enqueue, False=dequeue
)
def test_queue_conservation(capacity, ops):
    from repro.ixp.buffers import BufferHandle
    from repro.ixp.queues import PacketDescriptor

    queue = PacketQueue(0, 0, capacity=capacity)
    model_depth = 0
    for is_enqueue in ops:
        if is_enqueue:
            ok = queue.enqueue(PacketDescriptor(BufferHandle(0, 1), None, 1, 0, 0))
            if model_depth < capacity:
                assert ok
                model_depth += 1
            else:
                assert not ok
        else:
            got = queue.dequeue()
            if model_depth:
                assert got is not None
                model_depth -= 1
            else:
                assert got is None
        assert len(queue) == model_depth
        assert len(queue) <= capacity
    assert queue.enqueued == queue.dequeued + len(queue)
    assert queue.enqueued + queue.dropped == sum(1 for op in ops if op)


# -- stride scheduler fairness -----------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    tickets=st.tuples(st.integers(1, 500), st.integers(1, 500)),
    rounds=st.integers(50, 300),
)
def test_stride_fairness_bound(tickets, rounds):
    """With both flows always backlogged, realized service proportions
    track ticket proportions within a small absolute error."""
    scheduler = StrideScheduler(queue_capacity=10_000)
    scheduler.add_flow("a", tickets[0])
    scheduler.add_flow("b", tickets[1])
    for i in range(rounds * 2):
        scheduler.enqueue("a", i)
        scheduler.enqueue("b", i)
    served = {"a": 0, "b": 0}
    for __ in range(rounds):
        name, __item = scheduler.select()
        scheduler.charge(name, 10)
        served[name] += 1
    expected_a = rounds * tickets[0] / sum(tickets)
    # Stride scheduling's lag bound is O(1) service quanta; allow a
    # small absolute band plus rounding.
    assert abs(served["a"] - expected_a) <= max(3, 0.05 * rounds)


# -- packet codec roundtrips -----------------------------------------------------------


ip_octet = st.integers(0, 255)


@settings(max_examples=80, deadline=None)
@given(
    src=st.tuples(ip_octet, ip_octet, ip_octet, ip_octet),
    dst=st.tuples(ip_octet, ip_octet, ip_octet, ip_octet),
    sport=st.integers(0, 65535),
    dport=st.integers(0, 65535),
    ttl=st.integers(1, 255),
    seq=st.integers(0, 2**32 - 1),
    payload=st.binary(max_size=600),
)
def test_packet_wire_roundtrip_property(src, dst, sport, dport, ttl, seq, payload):
    packet = make_tcp_packet(
        ".".join(map(str, src)), ".".join(map(str, dst)),
        sport, dport, ttl=ttl, seq=seq, payload=payload,
    )
    parsed = Packet.from_bytes(packet.to_bytes())
    assert parsed.ip.src == packet.ip.src
    assert parsed.ip.dst == packet.ip.dst
    assert parsed.tcp.src_port == sport
    assert parsed.tcp.dst_port == dport
    assert parsed.tcp.seq == seq
    assert parsed.ip.ttl == ttl
    assert parsed.payload == payload
    ok, reason = parsed.ip.validate()
    assert ok, reason
    assert parsed.tcp.verify_checksum(parsed.ip.src, parsed.ip.dst, parsed.payload)


@settings(max_examples=80, deadline=None)
@given(data=st.binary(min_size=0, max_size=64))
def test_arbitrary_bytes_never_crash_parser(data):
    """Malformed frames must raise ValueError, never anything else."""
    try:
        Packet.from_bytes(data)
    except ValueError:
        pass


# -- VRP cost algebra --------------------------------------------------------------------


op_strategy = st.one_of(
    st.builds(RegOps, st.integers(1, 50)),
    st.builds(SramRead, st.integers(1, 4)),
    st.builds(SramWrite, st.integers(1, 4)),
    st.builds(HashOp, st.integers(1, 3)),
)


@settings(max_examples=60, deadline=None)
@given(ops_a=st.lists(op_strategy, min_size=1, max_size=8),
       ops_b=st.lists(op_strategy, min_size=1, max_size=8))
def test_vrp_cost_is_additive_under_concat(ops_a, ops_b):
    a = VRPProgram("a", ops_a)
    b = VRPProgram("b", ops_b)
    combined = VRPProgram.concat("ab", [a, b])
    ca, cb, cc = a.cost(), b.cost(), combined.cost()
    assert cc.cycles == ca.cycles + cb.cycles
    assert cc.sram_bytes == ca.sram_bytes + cb.sram_bytes
    assert cc.hashes == ca.hashes + cb.hashes
    assert combined.instruction_count() == a.instruction_count() + b.instruction_count()
    assert combined.register_op_count() == a.register_op_count() + b.register_op_count()


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(op_strategy, min_size=1, max_size=10))
def test_vrp_timed_compilation_consistent(ops):
    program = VRPProgram("p", ops)
    timed = program.to_timed()
    cost = program.cost()
    assert timed.sram_reads + timed.sram_writes == cost.sram_transfers
    assert timed.hashes == cost.hashes
    assert timed.reg_cycles == program.register_op_count() + cost.hashes


# -- ISTORE layout invariants ----------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    installs=st.lists(
        st.tuples(st.booleans(), st.integers(1, 120)),  # (is_general, length)
        max_size=12,
    ),
)
def test_istore_segments_never_overlap(installs):
    store = InstructionStore()
    for i, (is_general, length) in enumerate(installs):
        try:
            if is_general:
                store.install_general(f"g{i}", length)
            else:
                store.install_per_flow(f"p{i}", length)
        except IStoreError:
            continue
    segments = sorted(
        (offset, offset + length) for offset, length, __ in store.installed().values()
    )
    for (__, end_a), (start_b, __b) in zip(segments, segments[1:]):
        assert end_a <= start_b  # disjoint
    for start, end in segments:
        assert store.ext_base <= start and end <= store.capacity
    assert store.free_slots >= 0
