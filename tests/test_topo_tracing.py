"""Network-wide distributed tracing: the cross-router journey record.

Contract under test (docs/observability.md, "Network-wide tracing"):

* every delivered packet's per-hop latency decomposition sums EXACTLY
  to its measured host-to-host latency -- packet by packet, not in
  aggregate;
* a lost packet's journey ends at the exact link or router that killed
  it, with the drop kind attributed;
* the merged multi-process Chrome trace passes the validator: one
  process per router, cross-process flow events for link crossings,
  timestamps monotonic per track;
* everything is a pure function of (scenario, seed): the netview JSON
  artifact and the merged Chrome export are byte-identical across two
  same-seed runs;
* a wrapped trace ring on ANY node flags the whole network trace as
  truncated -- coverage gaps are surfaced, never silently ignored.
"""

import json

import pytest

from repro.obs.analysis import validate_chrome_trace
from repro.obs.recorder import Recorder
from repro.topo.netview import NetviewResult, bench_rows, run_netview
from repro.topo.tracing import (
    NULL_TRACER,
    ROUTER_PID_BASE,
    TRACE_ID_BASE,
    NullNetTracer,
)

SEED = 7
WINDOW = 120_000


@pytest.fixture(scope="module")
def views():
    """All three scenarios at the DEFAULT window: congestion-collapse
    needs the full horizon for its own collapse-observed invariant."""
    return {v.scenario: v for v in run_netview("all", seed=SEED)}


@pytest.fixture(scope="module")
def link_failure():
    return run_netview("link-failure", seed=SEED, window=WINDOW)[0]


@pytest.fixture(scope="module")
def rerun_link_failure():
    """A second, independent same-seed run (byte-identity comparisons)."""
    return run_netview("link-failure", seed=SEED, window=WINDOW)[0]


@pytest.fixture(scope="module")
def bare_link_failure():
    """The uninstrumented run (observer-effect comparisons)."""
    from repro.topo.scenarios import run_topo

    return run_topo("link-failure", seed=SEED, window=WINDOW)[0]


# ---------------------------------------------------------------------------
# Per-hop decomposition.
# ---------------------------------------------------------------------------


def test_hop_segments_sum_exactly_per_delivered_packet(link_failure):
    tracer = link_failure.topo.tracer
    delivered = 0
    for tid in tracer.journeys():
        d = tracer.decompose(tid)
        if d["terminal"] != "delivered":
            continue
        delivered += 1
        span = sum(seg["cycles"] for seg in d["segments"])
        assert span == d["latency"], (tid, d)
        assert d["exact"]
    assert delivered > 0


def test_journeys_traverse_links_and_routers(link_failure):
    tracer = link_failure.topo.tracer
    places = set()
    for tid in tracer.journeys():
        for seg in tracer.decompose(tid)["segments"]:
            places.add(seg["where"].split(":", 1)[0])
    # A multi-hop topology: residence at hosts/routers plus link transit.
    assert {"host", "link"} <= places


def test_trace_ids_share_the_global_space(link_failure):
    tracer = link_failure.topo.tracer
    assert tracer.journeys()
    assert all(tid >= TRACE_ID_BASE for tid in tracer.journeys())


def test_every_scenario_gate_holds(views):
    for name, view in views.items():
        assert view.ok, (name, [i for i in view.invariants() if not i["ok"]])


def test_drop_or_delivery_accounted_for_every_trace(views):
    """Terminal states cover every trace: delivered, dropped (with the
    exact hop attributed), or consumed by a router (control/ICMP)."""
    for view in views.values():
        rep = view.hop_report
        assert sum(rep["terminals"].values()) == rep["traces"]
        dropped = rep["terminals"].get("dropped", 0)
        assert sum(rep["drop_attribution"].values()) >= dropped
        for key in rep["drop_attribution"]:
            assert key.startswith(("link:", "router:", "host:", "at:"))


# ---------------------------------------------------------------------------
# Merged multi-process Chrome trace.
# ---------------------------------------------------------------------------


def test_merged_chrome_trace_passes_validator(link_failure):
    doc = link_failure.chrome()
    assert validate_chrome_trace(doc) == []


def test_merged_chrome_trace_has_router_processes_and_flows(link_failure):
    doc = link_failure.chrome()
    events = doc["traceEvents"]
    process_names = {e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
    routers = {n for n in process_names if n.startswith("router ")}
    assert "network" in process_names
    assert len(routers) >= 2

    starts = {(e["id"], e["name"]): e for e in events if e["ph"] == "s"}
    finishes = [e for e in events if e["ph"] == "f"]
    assert starts and finishes
    for fin in finishes:
        start = starts[(fin["id"], fin["name"])]
        # A link crossing binds two DIFFERENT router processes.
        assert start["pid"] != fin["pid"]
        assert start["pid"] >= ROUTER_PID_BASE
        assert fin["pid"] >= ROUTER_PID_BASE
        assert start["ts"] <= fin["ts"]


def test_chrome_export_is_byte_identical_per_seed(link_failure,
                                                  rerun_link_failure):
    a = json.dumps(link_failure.chrome(), sort_keys=True)
    b = json.dumps(rerun_link_failure.chrome(), sort_keys=True)
    assert a == b


def test_netview_json_is_byte_identical_per_seed(link_failure,
                                                 rerun_link_failure):
    assert link_failure.to_json() == rerun_link_failure.to_json()


@pytest.mark.slow
def test_different_seed_changes_the_artifact(link_failure):
    other = run_netview("link-failure", seed=11, window=WINDOW)[0]
    assert other.to_json() != link_failure.to_json()


# ---------------------------------------------------------------------------
# Truncation accounting.
# ---------------------------------------------------------------------------


def test_tiny_recorder_ring_flags_the_network_trace_truncated():
    def shrink(topo):
        name = sorted(topo.nodes)[0]
        node = topo.nodes[name]
        node.recorder = node.router.enable_observability(
            recorder=Recorder(capacity=64))

    view = run_netview("link-failure", seed=SEED, window=WINDOW,
                       extra_instrument=shrink)[0]
    assert view.topo.trace_dropped_events > 0
    assert view.truncated
    assert view.chrome()["otherData"]["truncated"] is True
    assert view.result.accounting["trace_dropped_events"] > 0


def test_untruncated_run_reports_zero_drops(link_failure):
    assert link_failure.topo.trace_dropped_events == 0
    assert not link_failure.truncated
    assert link_failure.chrome()["otherData"]["truncated"] is False


# ---------------------------------------------------------------------------
# The null tracer and the untraced path.
# ---------------------------------------------------------------------------


def test_null_tracer_is_inert():
    tracer = NullNetTracer()
    assert tracer.enabled is False
    assert tracer.on_host_send(None, None) is None
    tracer.on_link_enter(None, None)
    tracer.on_link_drop(None, None, "down")
    assert tracer.journeys() == {}
    assert tracer.decompose(1) is None
    assert tracer.hop_report()["traces"] == 0
    assert NULL_TRACER.enabled is False


@pytest.mark.slow
def test_untraced_run_is_byte_identical_run_to_run(bare_link_failure):
    """The untraced path stays deterministic: packets carry no trace
    keys, recorders assign local ids, and two bare same-seed runs emit
    identical incident logs."""
    from repro.topo.scenarios import run_topo

    again = run_topo("link-failure", seed=SEED, window=WINDOW)[0]
    assert bare_link_failure.incident_log_json() == again.incident_log_json()
    assert bare_link_failure.topo.tracer is NULL_TRACER


def test_traced_run_preserves_packet_outcomes(bare_link_failure, link_failure):
    """Tracing observes; it must not perturb. Delivered / drop counters
    match the uninstrumented run exactly."""
    bare = bare_link_failure.accounting
    traced = dict(link_failure.result.accounting)
    traced.pop("trace_dropped_events", None)
    compare = {k: v for k, v in bare.items() if k != "trace_dropped_events"}
    assert traced == compare


# ---------------------------------------------------------------------------
# netview surfaces.
# ---------------------------------------------------------------------------


def test_netview_invariants_and_table(link_failure):
    names = [inv["name"] for inv in link_failure.invariants()]
    assert names == ["scenario-invariants", "hop-sums-exact",
                     "merged-chrome-valid"]
    assert link_failure.exit_code() == 0
    text = "\n".join(link_failure.table())
    assert "netview link-failure" in text
    assert "hop sums exact: yes" in text
    assert "| PASS |" in text


def test_netview_timeline_starts_with_initial_convergence(link_failure):
    timeline = link_failure.convergence_timeline()
    assert timeline[0]["event"] == "initial-convergence"
    kinds = {entry["event"] for entry in timeline[1:]}
    assert "topo-link-down" in kinds


def test_bench_rows_cover_the_gate(views):
    rows = bench_rows(list(views.values()))
    for view in views.values():
        key = view.scenario.replace("-", "_")
        assert rows[f"{key}_ok"]["measured"] == 1
        assert rows[f"{key}_hop_sums_exact"]["measured"] == 1
        assert rows[f"{key}_traced"]["measured"] > 0
        assert rows[f"{key}_metric_samples"]["measured"] > 0


def test_netview_cli_json_and_chrome(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.setenv("REPRO_BENCH_ROOT", str(tmp_path))
    chrome_out = tmp_path / "lf.chrome.json"
    rc = main(["netview", "link-failure", "--seed", str(SEED),
               "--window", str(WINDOW), "--json",
               "--chrome-out", str(chrome_out)])
    out = capsys.readouterr().out
    assert rc == 0
    doc = json.loads(out[out.index("["):])[0]
    assert doc["ok"] is True
    assert doc["tracing"]["exact"] is True
    chrome = json.loads(chrome_out.read_text())
    assert validate_chrome_trace(chrome) == []
    assert (tmp_path / "BENCH_netview.json").exists()
