"""Tests for the per-port buffer-stack allocator (section 3.2.3's
described-but-not-built alternative to the circular scheme)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ixp.buffers import BufferPool, StackBufferPool


def test_alloc_free_roundtrip():
    pool = StackBufferPool(buffer_count=16, num_ports=4)
    index = pool.alloc(out_port=1, contents="pkt")
    assert pool.read(index) == "pkt"
    pool.free(index)
    assert pool.allocations == 1 and pool.frees == 1


def test_no_reuse_loss_unlike_circular():
    """The stack scheme's selling point: buffers survive until freed."""
    pool = StackBufferPool(buffer_count=8, num_ports=2)
    index = pool.alloc(out_port=0, contents="keep")
    # Allocate and free far more than the pool size on the other port.
    for __ in range(50):
        other = pool.alloc(out_port=1)
        pool.free(other)
    assert pool.read(index) == "keep"  # still valid


def test_per_port_exhaustion_is_isolated():
    """A slow port exhausts only its own stack (the design's reason for
    per-port stacks: 'to prevent contention from causing shortages')."""
    pool = StackBufferPool(buffer_count=8, num_ports=2)
    grabbed = [pool.alloc(out_port=0) for __ in range(4)]
    assert all(g is not None for g in grabbed)
    assert pool.alloc(out_port=0) is None  # port 0 exhausted
    assert pool.exhaustions == 1
    assert pool.alloc(out_port=1) is not None  # port 1 unaffected


def test_double_free_rejected():
    pool = StackBufferPool(buffer_count=4, num_ports=1)
    index = pool.alloc(out_port=0)
    pool.free(index)
    with pytest.raises(ValueError):
        pool.free(index)


def test_read_unallocated_rejected():
    pool = StackBufferPool(buffer_count=4, num_ports=1)
    with pytest.raises(ValueError):
        pool.read(0)


def test_oversize_rejected():
    pool = StackBufferPool(buffer_bytes=2048, num_ports=1)
    with pytest.raises(ValueError):
        pool.alloc(out_port=0, size=4096)


def test_bad_dimensions_rejected():
    with pytest.raises(ValueError):
        StackBufferPool(buffer_count=0)
    with pytest.raises(ValueError):
        StackBufferPool(num_ports=0)


def test_extra_cost_documented():
    # The paper: "this is not strictly necessary and adds overhead".
    assert StackBufferPool.EXTRA_SRAM_OPS_PER_PACKET == 2


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 3)), max_size=60))
def test_stack_conservation_property(ops):
    """Invariant: allocated + free == total, always, under any alloc/free
    interleaving."""
    pool = StackBufferPool(buffer_count=16, num_ports=4)
    live = []
    for is_alloc, port in ops:
        if is_alloc:
            index = pool.alloc(out_port=port)
            if index is not None:
                live.append(index)
        elif live:
            pool.free(live.pop())
    free_total = sum(pool.available(p) for p in range(4))
    assert free_total + len(live) == 16
    assert len(set(live)) == len(live)  # no buffer handed out twice


def test_contrast_with_circular_lifetime():
    """Side-by-side: the circular pool loses a long-lived packet, the
    stack pool keeps it but can refuse allocations."""
    circular = BufferPool(buffer_count=4)
    handle = circular.alloc(contents="slow-packet")
    for __ in range(4):
        circular.alloc()
    assert circular.read(handle) is None           # lost to reuse

    stacks = StackBufferPool(buffer_count=4, num_ports=1)
    index = stacks.alloc(out_port=0, contents="slow-packet")
    while stacks.alloc(out_port=0) is not None:
        pass
    assert stacks.read(index) == "slow-packet"     # kept
    assert stacks.exhaustions > 0                  # but allocation failed
