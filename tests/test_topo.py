"""Unit tests for the multi-router topology package.

Covers graph construction, link delivery ordering, TTL/ICMP behavior
across multiple hops, builder connectivity, link-state routes checked
against an independent Dijkstra (hand-rolled here -- the protocol uses
networkx, so the reference must not), and the multi-instance regression:
two routers in one engine keep fully independent state.
"""

import heapq

import pytest

from repro.topo import builders
from repro.topo.network import Topology

pytestmark = []


# ---------------------------------------------------------------------------
# Construction.
# ---------------------------------------------------------------------------

def test_basic_construction():
    topo = Topology(seed=1)
    a = topo.add_router("a")
    b = topo.add_router("b")
    link = topo.connect("a", "b", cost=3, latency=500)
    host = topo.add_host("h", "a")
    assert topo.nodes["a"] is a and topo.nodes["b"] is b
    assert link.cost == 3 and link.latency == 500 and link.up
    assert topo.link_between("b", "a") is link
    assert a.node.neighbors == {b.router_id: 3}
    assert b.node.neighbors == {a.router_id: 3}
    # The host's /24 is advertised by its gateway.
    assert (host.prefix, 24) in [(p, l) for p, l, _ in a.node.networks]
    assert host.address.startswith(host.prefix[:-1])


def test_duplicate_names_and_links_rejected():
    topo = Topology()
    topo.add_router("a")
    topo.add_router("b")
    topo.connect("a", "b")
    with pytest.raises(ValueError):
        topo.add_router("a")
    with pytest.raises(ValueError):
        topo.connect("a", "b")
    with pytest.raises(ValueError):
        topo.connect("a", "a")
    with pytest.raises(KeyError):
        topo.link_between("a", "nope")


def test_port_exhaustion_is_loud():
    topo = Topology()
    topo.add_router("a", num_ports=1)
    topo.add_router("b")
    topo.connect("a", "b")
    topo.add_router("c")
    with pytest.raises(RuntimeError, match="out of ports"):
        topo.connect("a", "c")


# ---------------------------------------------------------------------------
# Delivery: ordering, TTL, ICMP.
# ---------------------------------------------------------------------------

def _deliver(topo, src, dst, count, ttl=64, interval=2_000, cycles=150_000,
             warm=True):
    topo.converge()
    if warm:
        # The first packet on a cold route cache crosses via the slow
        # path (route-fill) without the fast path's TTL decrement; one
        # long-TTL packet warms every cache on the path so the packets
        # under test all take the fast path.
        topo.hosts[src].start_flow(topo.hosts[dst], count=1, interval=interval,
                                   ttl=64, flow="warm")
    topo.hosts[src].start_flow(topo.hosts[dst], count=count,
                               interval=interval, start=10_000, ttl=ttl,
                               flow="probe")
    topo.run(cycles)


def test_link_delivery_preserves_order():
    """FIFO per link direction: packets arrive in send order."""
    topo = builders.line(2, seed=3)
    _deliver(topo, "h1", "h2", count=20)
    sink = topo.hosts["h2"]
    seqs = [seq for flow, seq, _ in sink.received_log if flow == "probe"]
    assert seqs == sorted(seqs)
    assert len(seqs) == 20


def test_ttl_decrements_per_hop():
    topo = builders.line(3, seed=3)
    _deliver(topo, "h1", "h3", count=5)
    sink = topo.hosts["h3"]
    ttls = {ttl for flow, _, ttl in sink.received_log if flow == "probe"}
    # 3 routers on the path, TTL decremented by the forwarder at each.
    assert ttls == {64 - 3}


def test_ttl_expiry_generates_icmp_to_source():
    topo = builders.line(3, seed=3)
    _deliver(topo, "h1", "h3", count=4, ttl=2)
    src, sink = topo.hosts["h1"], topo.hosts["h3"]
    # TTL 2 dies inside the line (3 router hops needed); every expired
    # packet is answered with Time Exceeded routed back to the source.
    assert sink.received_by_flow.get("probe", 0) == 0
    assert src.received_icmp == 4
    acct = topo.accounting()
    # The expired packets are consumed by the ICMP generator: residual
    # equals the answered errors, nothing silently vanishes.
    assert acct["residual"] == acct["icmp_errors"] == 4


def test_packets_that_fit_ttl_are_delivered():
    topo = builders.line(3, seed=3)
    _deliver(topo, "h1", "h3", count=4, ttl=4)
    assert topo.hosts["h3"].received_by_flow.get("probe", 0) == 4
    assert topo.hosts["h1"].received_icmp == 0


def test_meta_is_scrubbed_across_links():
    """A router's private annotations must not reach the next hop."""
    topo = builders.line(2, seed=3)
    topo.converge()
    captured = []
    gateway_link = topo.hosts["h2"].link

    original_deliver = gateway_link._ends[1].deliver

    def spy(packet, frame):
        captured.append(dict(packet.meta))
        original_deliver(packet, frame)

    gateway_link._ends[1].deliver = spy
    topo.hosts["h1"].start_flow(topo.hosts["h2"], count=3, interval=2_000)
    topo.run(120_000)
    assert len(captured) == 3
    for meta in captured:
        assert all(k.startswith("topo_") or k == "icmp" for k in meta), meta


# ---------------------------------------------------------------------------
# Builders vs an independent Dijkstra.
# ---------------------------------------------------------------------------

def _independent_spf(topo, source_id):
    """Hand-rolled Dijkstra over the built graph (adjacency from the
    Topology's links, not from the protocol's LSDB).  Returns
    {router_id: first_hop_id}."""
    graph = {}
    for link in topo.links:
        if not link.nodes:
            continue  # host access link
        a, b = link.nodes
        graph.setdefault(a.router_id, {})[b.router_id] = link.cost
        graph.setdefault(b.router_id, {})[a.router_id] = link.cost
    dist = {source_id: 0}
    first_hop = {}
    heap = [(0, source_id, None)]
    visited = set()
    while heap:
        d, node, hop = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if hop is not None:
            first_hop[node] = hop
        for neighbor, cost in graph.get(node, {}).items():
            nd = d + cost
            if neighbor not in dist or nd < dist[neighbor]:
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, neighbor,
                                      neighbor if hop is None else hop))
    return dist, first_hop


@pytest.mark.parametrize("build", [
    lambda: builders.line(4, seed=2),
    lambda: builders.ring(5, seed=2),
    lambda: builders.mesh(4, seed=2),
    lambda: builders.fat_tree(2, seed=2),
    lambda: builders.isp(seed=2),
], ids=["line", "ring", "mesh", "fat-tree", "isp"])
def test_builder_routes_match_independent_dijkstra(build):
    topo = build()
    topo.converge()
    ids = {node.router_id: node for node in topo.nodes.values()}
    for node in topo.nodes.values():
        dist, first_hop = _independent_spf(topo, node.router_id)
        # Connected: every other router reachable.
        assert set(dist) == set(ids), f"{node.name} cannot reach everyone"
        for host in topo.hosts.values():
            target = host.node.router_id
            route = node.node.routes.get((host.prefix, 24))
            assert route is not None, (
                f"{node.name} has no route to {host.prefix}/24")
            next_hop, out_port = route
            if target == node.router_id:
                assert next_hop == node.router_id
                continue
            # The protocol's next hop must be *a* shortest first hop;
            # verify its distance is optimal along that hop.
            hop_id = node.node.port_to_neighbor[out_port]
            assert hop_id == next_hop
            cost_to_hop = node.node.neighbors[hop_id]
            hop_dist, _ = _independent_spf(topo, hop_id)
            assert cost_to_hop + hop_dist[target] == dist[target], (
                f"{node.name} -> {host.prefix}/24 via {hop_id} is not shortest")


@pytest.mark.parametrize("build,routers,links", [
    (lambda: builders.line(4), 4, 3),
    (lambda: builders.ring(6), 6, 6),
    (lambda: builders.mesh(4), 4, 6),
    (lambda: builders.fat_tree(2), 5, 4),
    (lambda: builders.isp(), 6, 7),
], ids=["line", "ring", "mesh", "fat-tree", "isp"])
def test_builder_shapes(build, routers, links):
    topo = build()
    inter_router = [l for l in topo.links if l.nodes]
    assert len(topo.nodes) == routers
    assert len(inter_router) == links
    assert topo.hosts  # every builder attaches at least one host


def test_from_spec_round_trip(tmp_path):
    import json

    path = tmp_path / "net.json"
    path.write_text(json.dumps(builders.ISP_SPEC))
    topo = builders.from_spec(str(path), seed=5)
    assert set(topo.nodes) == {"core1", "core2", "agg1", "agg2", "edge1", "edge2"}
    assert topo.seed == 5
    assert topo.link_between("core1", "core2").latency == 400
    with pytest.raises(TypeError):
        builders.from_spec(42)


# ---------------------------------------------------------------------------
# Multi-instance regression: two routers in one engine stay independent.
# ---------------------------------------------------------------------------

def test_two_routers_one_engine_independent_state():
    """The satellite regression: module-level or id-keyed state must not
    alias across Router instances sharing one simulator."""
    topo = builders.line(2, seed=9)
    topo.converge()
    r1, r2 = topo.nodes["r1"].router, topo.nodes["r2"].router
    # Independent routing tables and caches.
    assert r1.routing_table is not r2.routing_table
    gen_before = r2.routing_table.generation
    r1.add_route("172.16.0.0", 16, 0)
    assert r2.routing_table.generation == gen_before
    from repro.net.addresses import IPv4Address

    assert r2.routing_table.lookup_linear(IPv4Address("172.16.1.1")) is None
    # Traffic through r1 -> r2 leaves each router's own counters telling
    # its own story: r1 and r2 both forward, but their flow tables,
    # classifiers and stats objects are distinct.
    topo.hosts["h1"].start_flow(topo.hosts["h2"], count=10, interval=2_000)
    topo.run(100_000)
    s1, s2 = r1.stats(), r2.stats()
    assert s1["input_packets"] >= 10 and s2["input_packets"] >= 10
    assert r1.flow_table is not r2.flow_table
    assert r1.classifier is not r2.classifier


def test_shared_injector_faults_do_not_alias_across_routers():
    """Flapping r1's port 0 must not drop frames on r2's port 0 (plans
    were once keyed by port_id, which restarts at 0 on every router)."""
    topo = builders.line(2, seed=9)
    inj = topo.enable_faults(seed=9)
    topo.converge()
    r1_node, r2_node = topo.nodes["r1"], topo.nodes["r2"]
    # Arm a flap on r1's port 0 covering the whole run.
    inj.schedule_link_flap(r1_node.port(0), at=5_000, down_cycles=400_000)
    # And a full-drop plan on the same-numbered port of r1.
    inj.schedule_packet_faults(r1_node.port(0), start=0, stop=500_000, drop=1.0)
    topo.run(20_000)
    # Deliver a frame directly to r2's port 0: same port_id, different
    # router -- it must get through.
    from repro.net.packet import make_tcp_packet

    packet = make_tcp_packet("10.9.9.1", "10.9.9.2")
    assert r2_node.port(0).deliver(packet, packet.to_bytes())
    assert r2_node.port(0).stats.counter("rx_fault_dropped").value == 0
    assert r2_node.port(0).stats.counter("rx_packets").value >= 1


def test_reprogramming_routes_reroutes_the_trie():
    """Reconvergence reprograms the same prefix with a new port; the CPE
    trie must follow (it once kept the stale equal-length entry)."""
    from repro.net.addresses import IPv4Address
    from repro.net.routing import RoutingTable

    table = RoutingTable()
    table.add("10.3.0.0", 24, 1)
    assert table.lookup(IPv4Address("10.3.0.7")).out_port == 1
    table.add("10.3.0.0", 24, 3)   # reconvergence: same prefix, new port
    assert len(table) == 1
    assert table.lookup(IPv4Address("10.3.0.7")).out_port == 3
    assert table.lookup_linear(IPv4Address("10.3.0.7")).out_port == 3
