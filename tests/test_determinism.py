"""Determinism guarantees of the simulation kernel.

The two-tier calendar scheduler exists purely for speed: it must produce
the *identical* event ordering to the reference heap scheduler, and any
run must reproduce itself exactly.  These tests pin both properties with
per-cycle stat traces of a full chip simulation -- the same instrument
the engine docs tell model authors to use when they suspect a
determinism bug (see ``docs/engine.md``).
"""

import pytest

from repro.engine import Resource, SimulationError, Simulator, delay
from repro.ixp.chip import ChipConfig, IXP1200
from repro.ixp.programs import TimedVRP


def _chip_trace(scheduler: str, until: int = 10_000, step: int = 250):
    """Per-cycle-snapshot trace of a full-pipeline run: counters plus
    memory busy time at every ``step`` cycles."""
    sim = Simulator(scheduler=scheduler)
    chip = IXP1200(ChipConfig(vrp=TimedVRP.blocks(4)), sim=sim)
    trace = []
    for t in range(0, until, step):
        sim.run(until=t)
        trace.append(
            (
                sim.now,
                tuple(sorted(chip.counters.items())),
                chip.dram.busy_cycles,
                chip.sram.busy_cycles,
                chip.scratch.busy_cycles,
                tuple(me.busy_cycles for me in chip.engines),
            )
        )
    trace.append(("events", sim._events_processed))
    return trace


def test_same_scenario_twice_is_identical():
    assert _chip_trace("calendar") == _chip_trace("calendar")


def test_calendar_and_heap_schedulers_agree():
    """The fast path is an optimization, not a semantic change: both
    schedulers must produce bit-identical stat traces."""
    assert _chip_trace("calendar") == _chip_trace("heap")


def test_scheduler_flag_validation():
    assert Simulator(scheduler="calendar").scheduler == "calendar"
    assert Simulator(scheduler="heap").scheduler == "heap"
    with pytest.raises(SimulationError):
        Simulator(scheduler="fibonacci")


def test_scheduler_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
    assert Simulator().scheduler == "heap"
    monkeypatch.delenv("REPRO_SIM_SCHEDULER")
    assert Simulator().scheduler == "calendar"


def test_same_cycle_fifo_across_schedulers():
    """Same-cycle wakes (resource grants, zero/equal delays) must keep
    FIFO order in both schedulers, including wakes scheduled while the
    cycle is already draining."""

    def run(scheduler):
        sim = Simulator(scheduler=scheduler)
        lock = Resource(sim, capacity=1)
        order = []

        def worker(wid):
            for _ in range(50):
                yield lock.acquire()
                order.append((sim.now, wid))
                yield delay(wid % 3)
                lock.release()
                yield delay(1)

        for wid in range(8):
            sim.spawn(worker(wid))
        sim.run()
        return order

    assert run("calendar") == run("heap")
