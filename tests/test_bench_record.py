"""The benchmark trajectory recorder: BENCH_<name>.json round trips.

Covers the library (record / load / diff) and the ``benchmarks/conftest``
session hook that turns pytest-benchmark ``extra_info`` rows into
trajectory files -- exercised here on synthesized benchmark objects so
the test does not need to run a real bench.
"""

import importlib.util
import json
import os

import pytest

from repro.obs.bench_record import (
    ROOT_ENV,
    SCHEMA,
    bench_path,
    diff_rows,
    load_benchmark,
    record_benchmark,
)

# ---------------------------------------------------------------------------
# record / load
# ---------------------------------------------------------------------------


def test_record_and_load_round_trip(tmp_path):
    rows = {
        "throughput (Mpps)": {"paper": 3.47, "measured": 3.52},
        "drops": {"paper": None, "measured": 0},
    }
    tests = {
        "test_throughput": {"wall_time_s": 1.25, "rows": rows},
    }
    path = record_benchmark("bench_demo", rows, tests=tests,
                            root=str(tmp_path))
    assert path == str(tmp_path / "BENCH_bench_demo.json")
    doc = load_benchmark("bench_demo", root=str(tmp_path))
    assert doc["schema"] == SCHEMA
    assert doc["bench"] == "bench_demo"
    assert doc["rows"] == rows
    assert doc["wall_time_s"] == pytest.approx(1.25)
    assert doc["tests"]["test_throughput"]["rows"] == rows


def test_record_sanitizes_non_finite_floats(tmp_path):
    rows = {"spare": {"paper": None, "measured": float("inf")}}
    record_benchmark("bench_nan", rows, root=str(tmp_path))
    text = (tmp_path / "BENCH_bench_nan.json").read_text()
    assert "Infinity" not in text and "NaN" not in text
    assert json.loads(text)["rows"]["spare"]["measured"] is None


def test_root_env_var_overrides_destination(tmp_path, monkeypatch):
    monkeypatch.setenv(ROOT_ENV, str(tmp_path))
    assert bench_path("bench_x") == str(tmp_path / "BENCH_bench_x.json")
    record_benchmark("bench_x", {"m": {"paper": 1, "measured": 2}})
    assert (tmp_path / "BENCH_bench_x.json").exists()


def test_load_rejects_wrong_schema(tmp_path):
    (tmp_path / "BENCH_bad.json").write_text(json.dumps({"schema": "v0"}))
    with pytest.raises(ValueError, match="schema"):
        load_benchmark("bad", root=str(tmp_path))


def test_load_accepts_v1_baselines(tmp_path):
    """Committed v1 trajectory files stay readable after the v2 bump."""
    doc = {"schema": "repro-bench-trajectory-v1", "bench": "old",
           "rows": {"mpps": {"paper": None, "measured": 3.0}}}
    (tmp_path / "BENCH_old.json").write_text(json.dumps(doc))
    loaded = load_benchmark("old", root=str(tmp_path))
    assert loaded["rows"]["mpps"]["measured"] == 3.0


def test_seed_and_config_stamp_every_row(tmp_path):
    rows = {"delivered": {"paper": None, "measured": 56}}
    tests = {"test_t": {"wall_time_s": 0.5,
                        "rows": {"traced": {"paper": None, "measured": 56}}}}
    record_benchmark("bench_stamped", rows, tests=tests, root=str(tmp_path),
                     seed=7, config={"scenario": "link-failure",
                                     "window": 120_000})
    doc = load_benchmark("bench_stamped", root=str(tmp_path))
    assert doc["schema"] == "repro-bench-trajectory-v2"
    row = doc["rows"]["delivered"]
    assert row["seed"] == 7
    assert row["config"] == {"scenario": "link-failure", "window": 120_000}
    test_row = doc["tests"]["test_t"]["rows"]["traced"]
    assert test_row["seed"] == 7 and "config" in test_row


def test_row_local_attribution_wins_over_stamp(tmp_path):
    rows = {"m": {"paper": None, "measured": 1.0, "seed": 99}}
    record_benchmark("bench_local", rows, root=str(tmp_path), seed=7)
    doc = load_benchmark("bench_local", root=str(tmp_path))
    assert doc["rows"]["m"]["seed"] == 99


def test_unstamped_rows_stay_unchanged(tmp_path):
    """pytest-benchmark modules pass no seed/config; rows stay bare."""
    rows = {"m": {"paper": None, "measured": 1.0}}
    record_benchmark("bench_bare", rows, root=str(tmp_path))
    doc = load_benchmark("bench_bare", root=str(tmp_path))
    assert doc["rows"]["m"] == {"paper": None, "measured": 1.0}


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------


def _doc(rows):
    return {"schema": SCHEMA, "bench": "b", "rows": rows}


def test_diff_rows_reports_movement_beyond_threshold():
    old = _doc({"mpps": {"paper": 3.47, "measured": 3.0},
                "drops": {"paper": None, "measured": 10}})
    new = _doc({"mpps": {"paper": 3.47, "measured": 3.3},
                "drops": {"paper": None, "measured": 10}})
    moved = diff_rows(old, new, rel_threshold=0.05)
    assert moved == [("mpps", 3.0, 3.3, pytest.approx(0.1))]


def test_diff_rows_ignores_movement_within_threshold():
    old = _doc({"mpps": {"paper": None, "measured": 3.0}})
    new = _doc({"mpps": {"paper": None, "measured": 3.1}})
    assert diff_rows(old, new, rel_threshold=0.05) == []


def test_diff_rows_flags_appeared_and_disappeared_metrics():
    old = _doc({"gone": {"paper": None, "measured": 1.0}})
    new = _doc({"fresh": {"paper": None, "measured": 2.0}})
    moved = dict((m, (b, a)) for m, b, a, __ in diff_rows(old, new))
    assert moved == {"gone": (1.0, None), "fresh": (None, 2.0)}


# ---------------------------------------------------------------------------
# The benchmarks/conftest.py session hook
# ---------------------------------------------------------------------------


def _load_bench_conftest():
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(here, "benchmarks", "conftest.py")
    spec = importlib.util.spec_from_file_location("bench_conftest", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class _FakeStats:
    def __init__(self, total):
        self.total = total


class _FakeBench:
    def __init__(self, fullname, extra_info, total):
        self.fullname = fullname
        self.extra_info = extra_info
        self.stats = _FakeStats(total)


class _FakeSession:
    def __init__(self, benchmarks):
        class Config:
            pass

        self.config = Config()
        if benchmarks is not None:
            class BenchSession:
                pass

            bs = BenchSession()
            bs.benchmarks = benchmarks
            self.config._benchmarksession = bs


def test_sessionfinish_hook_writes_trajectory_files(tmp_path, monkeypatch):
    monkeypatch.setenv(ROOT_ENV, str(tmp_path))
    conftest = _load_bench_conftest()
    benches = [
        _FakeBench(
            "benchmarks/bench_alpha.py::test_one",
            {"mpps": {"paper": 3.47, "measured": 3.5}},
            total=2.0,
        ),
        _FakeBench(
            "benchmarks/bench_alpha.py::test_two",
            {"drops": {"paper": 0, "measured": 1}},
            total=1.5,
        ),
        _FakeBench(
            "benchmarks/bench_beta.py::test_three[64]",
            {"kpps": {"paper": 534, "measured": 520.0}},
            total=0.5,
        ),
        # No extra_info: contributes nothing.
        _FakeBench("benchmarks/bench_empty.py::test_skip", {}, total=0.1),
    ]
    conftest.pytest_sessionfinish(_FakeSession(benches), exitstatus=0)

    alpha = load_benchmark("bench_alpha", root=str(tmp_path))
    assert set(alpha["rows"]) == {"mpps", "drops"}
    assert alpha["rows"]["mpps"] == {"paper": 3.47, "measured": 3.5}
    assert alpha["wall_time_s"] == pytest.approx(3.5)
    assert set(alpha["tests"]) == {"test_one", "test_two"}

    beta = load_benchmark("bench_beta", root=str(tmp_path))
    assert set(beta["tests"]) == {"test_three[64]"}
    assert not (tmp_path / "BENCH_bench_empty.json").exists()


def test_sessionfinish_hook_is_inert_without_benchmarks(tmp_path, monkeypatch):
    monkeypatch.setenv(ROOT_ENV, str(tmp_path))
    conftest = _load_bench_conftest()
    conftest.pytest_sessionfinish(_FakeSession(None), exitstatus=0)
    conftest.pytest_sessionfinish(_FakeSession([]), exitstatus=0)
    assert list(tmp_path.iterdir()) == []


def test_hook_rows_match_reported_table(tmp_path, monkeypatch, capsys):
    """Acceptance criterion: the serialized rows are exactly what
    ``report()`` printed/attached for the bench."""
    monkeypatch.setenv(ROOT_ENV, str(tmp_path))
    conftest = _load_bench_conftest()

    class _Bench:
        def __init__(self):
            self.extra_info = {}
            self.fullname = "benchmarks/bench_gamma.py::test_t1"
            self.stats = _FakeStats(0.25)

    bench = _Bench()
    conftest.report(bench, "demo", [("rate (Mpps)", 3.47, 3.5)])
    printed = capsys.readouterr().out
    assert "rate (Mpps)" in printed and "3.5" in printed
    conftest.pytest_sessionfinish(_FakeSession([bench]), exitstatus=0)
    doc = load_benchmark("bench_gamma", root=str(tmp_path))
    assert doc["rows"] == {"rate (Mpps)": {"paper": 3.47, "measured": 3.5}}
