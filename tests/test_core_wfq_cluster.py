"""Tests for the input-side WFQ approximation (section 3.4.1), the
StrongARM proportional-share option (section 4.1), and the multi-router
cluster (section 6)."""

import pytest

from repro.core.cluster import RouterCluster, cluster_vrp_budget, member_mac
from repro.core.router import Router, RouterConfig
from repro.core.vrp import PROTOTYPE_BUDGET
from repro.core.wfq import InputSideWFQ, wfq_vrp_program
from repro.hosts.scheduling import StrideScheduler
from repro.net.traffic import flow_stream, take


# -- InputSideWFQ -----------------------------------------------------------------


def make_wfq():
    wfq = InputSideWFQ(num_priorities=4)
    wfq.add_class("heavy", 3.0, lambda p: p.tcp is not None and p.tcp.src_port == 1111)
    wfq.add_class("light", 1.0, lambda p: p.tcp is not None and p.tcp.src_port == 2222)
    return wfq


def test_wfq_validation():
    wfq = InputSideWFQ()
    with pytest.raises(ValueError):
        InputSideWFQ(num_priorities=1)
    with pytest.raises(ValueError):
        wfq.add_class("x", 0, lambda p: True)
    wfq.add_class("x", 1, lambda p: True)
    with pytest.raises(ValueError):
        wfq.add_class("x", 1, lambda p: True)


def test_wfq_class_within_share_gets_top_priority():
    wfq = make_wfq()
    heavy = take(flow_stream(1, src_port=1111), 1)[0]
    light = take(flow_stream(1, src_port=2222), 1)[0]
    # Alternating arrivals at the fair ratio: everyone stays on top.
    priorities = []
    for __ in range(3):
        priorities.append(wfq.priority_for(heavy))
        priorities.append(wfq.priority_for(heavy))
        priorities.append(wfq.priority_for(heavy))
        priorities.append(wfq.priority_for(light))
    assert max(priorities) <= 1


def test_wfq_overspending_class_demoted_under_contention():
    """Both classes backlogged at equal arrival rates: the light class
    (entitled to 1/4 of the link) runs ahead of its share and is demoted,
    while the heavy class stays on top."""
    wfq = make_wfq()
    heavy = take(flow_stream(1, src_port=1111), 1)[0]
    light = take(flow_stream(1, src_port=2222), 1)[0]
    heavy_levels, light_levels = [], []
    for __ in range(10):
        heavy_levels.append(wfq.priority_for(heavy))
        light_levels.append(wfq.priority_for(light))
    assert light_levels[-1] == 3     # demoted to the lowest level
    assert light_levels[0] < light_levels[-1]
    assert max(heavy_levels) == 0    # within its share throughout


def test_wfq_lone_sender_keeps_top_priority():
    """Work conservation: with every other class idle, a bursting class
    is entitled to the whole link and must not be demoted."""
    wfq = make_wfq()
    light = take(flow_stream(1, src_port=2222), 1)[0]
    levels = [wfq.priority_for(light) for __ in range(20)]
    assert max(levels) == 0


def test_wfq_unclassified_gets_lowest_priority():
    wfq = make_wfq()
    other = take(flow_stream(1, src_port=9999), 1)[0]
    assert wfq.priority_for(other) == wfq.num_priorities - 1
    assert wfq.unclassified == 1


def test_wfq_program_fits_vrp_budget():
    program = wfq_vrp_program()
    ok, reason = PROTOTYPE_BUDGET.check(program.cost(), program.registers_needed)
    assert ok, reason


@pytest.mark.slow
def test_wfq_in_router_shares_congested_port_by_weight():
    """Both classes flood one output port beyond its line rate; delivered
    packets approximate the 3:1 weights (FIFO would be ~1:1)."""
    wfq = make_wfq()
    router = Router(RouterConfig(wfq=wfq, queue_capacity=8))
    for port in range(10):
        router.add_route(f"10.{port}.0.0", 16, port)

    count = 120
    heavy = take(flow_stream(count, src_port=1111, out_port=1, payload_len=6), count)
    light = take(flow_stream(count, src_port=2222, src="192.168.9.9", out_port=1, payload_len=6), count)
    router.warm_route_cache([heavy[0].ip.dst, light[0].ip.dst])
    # Inject on two gig-capable... use two 100M ports at full tilt toward
    # the single 100 Mbps output port 1: 2x offered load = congestion.
    router.inject(2, iter(heavy))
    router.inject(3, iter(light))
    router.run(2_500_000)

    delivered = router.transmitted(1)
    heavy_out = sum(1 for p in delivered if p.tcp.src_port == 1111)
    light_out = sum(1 for p in delivered if p.tcp.src_port == 2222)
    # The heavy class dominates, the light class is not starved.  The
    # input-side approximation is coarser than true WFQ (finish times
    # advance even for packets that are later tail-dropped), so the
    # realized ratio overshoots the 3:1 weights; FIFO would give ~1:1.
    assert light_out > 5
    ratio = heavy_out / light_out
    assert 2.0 < ratio < 12.0, (heavy_out, light_out)
    # And packets were actually dropped (the port really was congested).
    assert heavy_out + light_out < 2 * count
    drops = sum(q.dropped for q in router.chip.bank.queues_for_port(1))
    assert drops > 0


# -- StrongARM proportional share ----------------------------------------------------


def test_strongarm_scheduler_divides_local_capacity():
    from repro.hosts.strongarm import LocalForwarder, StrongARM
    from repro.ixp.buffers import BufferHandle
    from repro.ixp.chip import ChipConfig, IXP1200
    from repro.ixp.queues import PacketDescriptor
    from repro.net.traffic import take, uniform_flood

    chip = IXP1200(ChipConfig(input_contexts=0, output_contexts=0))
    scheduler = StrideScheduler(queue_capacity=4096)
    scheduler.add_flow("gold", tickets=300)
    scheduler.add_flow("bronze", tickets=100)
    sa = StrongARM(chip, scheduler=scheduler)
    sa.register_local(LocalForwarder("gold", 400))
    sa.register_local(LocalForwarder("bronze", 400))

    for i in range(800):
        packet = take(uniform_flood(1, num_ports=1, seed=i), 1)[0]
        packet.meta["sa_forwarder"] = "gold" if i % 2 else "bronze"
        packet.meta["out_port"] = 0
        chip.sa_local_queue.enqueue(
            PacketDescriptor(BufferHandle(0, 0), packet, 1, 0, 0)
        )
    chip.sim.run(until=150_000)  # not enough time for all 800
    stats = scheduler.stats()
    gold, bronze = stats["gold"]["work_done"], stats["bronze"]["work_done"]
    assert bronze > 0
    assert gold / bronze == pytest.approx(3.0, rel=0.25)


# -- RouterCluster --------------------------------------------------------------------


@pytest.mark.slow
def test_cluster_routes_across_members():
    cluster = RouterCluster(num_routers=2)
    cluster.add_route("10.1.0.0", 16, owner=0, out_port=1)
    cluster.add_route("10.2.0.0", 16, owner=1, out_port=2)
    for router in cluster.routers:
        router.warm_route_cache(["10.1.0.1", "10.2.0.1"])

    # Traffic enters member 0 destined for a prefix member 1 owns.
    packets = take(flow_stream(6, dst="10.2.0.1", out_port=2, payload_len=6), 6)
    cluster.inject(0, 0, iter(packets))
    cluster.run(3_000_000)

    stats = cluster.stats()
    assert stats["switch"]["forwarded"] == 6
    delivered = cluster.routers[1].transmitted(2)
    assert len(delivered) == 6
    # Two routing hops: TTL decremented twice.
    assert all(p.ip.ttl == 62 for p in delivered)
    # Nothing leaked out of member 0's local ports.
    assert len(cluster.routers[0].transmitted(2)) == 0


@pytest.mark.slow
def test_cluster_local_traffic_stays_local():
    cluster = RouterCluster(num_routers=2)
    cluster.add_route("10.1.0.0", 16, owner=0, out_port=1)
    cluster.routers[0].warm_route_cache(["10.1.0.1"])
    packets = take(flow_stream(4, dst="10.1.0.1", payload_len=6), 4)
    cluster.inject(0, 0, iter(packets))
    cluster.run(1_500_000)
    assert len(cluster.routers[0].transmitted(1)) == 4
    assert cluster.stats()["switch"]["forwarded"] == 0


def test_cluster_validation():
    with pytest.raises(ValueError):
        RouterCluster(num_routers=1)
    cluster = RouterCluster(num_routers=2)
    with pytest.raises(ValueError):
        cluster.add_route("10.0.0.0", 16, owner=5, out_port=0)
    with pytest.raises(ValueError):
        cluster.add_route("10.0.0.0", 16, owner=0, out_port=9)  # internal


def test_member_macs_distinct():
    assert member_mac(0) != member_mac(1)


def test_cluster_vrp_budget_shrinks_with_internal_share():
    """Section 6: budgeting RI capacity for the internal link leaves
    fewer cycles for the VRP."""
    alone = cluster_vrp_budget(1.128e6, internal_fraction=0.0)
    clustered = cluster_vrp_budget(1.128e6, internal_fraction=0.25)
    heavy = cluster_vrp_budget(1.128e6, internal_fraction=0.75)
    assert alone.cycles > clustered.cycles > heavy.cycles
    with pytest.raises(ValueError):
        cluster_vrp_budget(1e6, internal_fraction=1.5)
