"""Unit tests for the statistics primitives."""

import pytest

from repro.engine import Counter, Histogram, RateMeter, StatSet, TimeWeighted


def test_counter_add_and_reset():
    counter = Counter("pkts")
    counter.add()
    counter.add(4)
    assert counter.value == 5
    counter.reset()
    assert counter.value == 0


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().add(-1)


def test_rate_meter_per_second():
    meter = RateMeter("fwd")
    for cycle in range(1, 201):
        meter.record(cycle)
    # 200 events over 200 cycles at 200 MHz -> 200 Mpps.
    assert meter.per_cycle() == pytest.approx(1.0)
    assert meter.per_second(200e6) == pytest.approx(200e6)


def test_rate_meter_restart_window():
    meter = RateMeter()
    meter.record(100)
    meter.restart(100)
    meter.record(150, amount=10)
    assert meter.count == 10
    assert meter.elapsed() == 50
    assert meter.per_cycle() == pytest.approx(0.2)


def test_rate_meter_explicit_now():
    meter = RateMeter()
    meter.record(10)
    assert meter.per_cycle(now=100) == pytest.approx(0.01)


def test_rate_meter_empty_window_is_zero():
    assert RateMeter().per_cycle() == 0.0


def test_time_weighted_mean():
    tw = TimeWeighted("depth")
    tw.update(10, 4)   # 0 for cycles 0-10
    tw.update(30, 0)   # 4 for cycles 10-30
    assert tw.mean(now=40) == pytest.approx((0 * 10 + 4 * 20 + 0 * 10) / 40)
    assert tw.maximum == 4
    assert tw.current == 0


def test_time_weighted_zero_span():
    tw = TimeWeighted(initial=3.0)
    assert tw.mean(now=0) == 3.0


def test_histogram_moments_and_buckets():
    histogram = Histogram("lat", bounds=[10, 100])
    for value in [5, 50, 500, 50]:
        histogram.record(value)
    assert histogram.count == 4
    assert histogram.mean == pytest.approx(151.25)
    assert histogram.min == 5
    assert histogram.max == 500
    assert histogram.buckets == [1, 2, 1]
    labels = [label for label, __ in histogram.bucket_items()]
    assert labels == ["(-inf, 10]", "(10, 100]", "(100, +inf)"]


def test_histogram_stddev():
    histogram = Histogram()
    for value in [2, 4, 4, 4, 5, 5, 7, 9]:
        histogram.record(value)
    assert histogram.stddev == pytest.approx(2.0)


def test_histogram_stddev_is_stable_for_large_offsets():
    # The old sum-of-squares formula cancels catastrophically when the
    # mean dwarfs the spread (cycle timestamps in the billions); Welford's
    # recurrence keeps full precision.
    histogram = Histogram()
    for value in [1e9, 1e9 + 1, 1e9 + 2]:
        histogram.record(value)
    assert histogram.stddev == pytest.approx((2 / 3) ** 0.5, rel=1e-9)


def test_histogram_empty():
    histogram = Histogram()
    assert histogram.mean == 0.0
    assert histogram.stddev == 0.0
    assert histogram.bucket_items() == [("(-inf, +inf)", 0)]


def test_histogram_unbounded_counts_in_catchall_bucket():
    histogram = Histogram()
    for value in [1, 10, 100]:
        histogram.record(value)
    assert histogram.bucket_items() == [("(-inf, +inf)", 3)]


def test_statset_is_memoized_registry():
    stats = StatSet("me0")
    assert stats.counter("drops") is stats.counter("drops")
    assert stats.rate("fwd") is stats.rate("fwd")
    assert stats.histogram("lat") is stats.histogram("lat")
    assert stats.time_weighted("qdepth") is stats.time_weighted("qdepth")


def test_statset_snapshot():
    stats = StatSet()
    stats.counter("drops").add(3)
    stats.histogram("lat").record(10)
    snap = stats.snapshot()
    assert snap["drops"] == 3
    assert snap["lat.mean"] == 10
    assert snap["lat.count"] == 1


def test_statset_snapshot_includes_every_stat_kind():
    # snapshot() used to silently omit rates and time-weighted stats, so
    # reports built from it under-described the components.
    stats = StatSet()
    stats.counter("drops").add(2)
    stats.rate("fwd").record(50, amount=10)
    stats.time_weighted("depth").update(40, 5.0)
    stats.histogram("lat").record(7)
    snap = stats.snapshot(now=100)
    assert snap["drops"] == 2
    assert snap["fwd.count"] == 10
    assert snap["fwd.rate_per_cycle"] == pytest.approx(0.1)
    assert snap["depth.current"] == 5.0
    assert snap["depth.max"] == 5.0
    assert snap["depth.mean"] == pytest.approx(5.0 * 60 / 100)
    assert snap["lat.mean"] == 7
    # Without ``now``, rates close at their last-recorded cycle and the
    # weighted mean (which needs an end point) is omitted.
    partial = stats.snapshot()
    assert partial["fwd.rate_per_cycle"] == pytest.approx(10 / 50)
    assert "depth.mean" not in partial
    assert partial["depth.max"] == 5.0


def test_statset_snapshot_zero_length_rate_window_is_zero():
    stats = StatSet()
    stats.rate("fwd")  # never recorded: zero elapsed cycles
    snap = stats.snapshot()
    assert snap["fwd.count"] == 0
    assert snap["fwd.rate_per_cycle"] == 0.0
