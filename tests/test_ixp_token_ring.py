"""Tests for the token-passing serialization mechanism."""

import pytest

from repro.engine import Delay, Simulator
from repro.ixp.token_ring import TokenRing, interleave_across_engines


def test_interleave_spreads_across_engines():
    # 8 contexts on 2 engines (ids 0-3 on ME0, 4-7 on ME1) must alternate.
    order = interleave_across_engines(list(range(8)), contexts_per_me=4)
    assert order == [0, 4, 1, 5, 2, 6, 3, 7]


def test_interleave_16_contexts_adjacent_differ_by_engine():
    order = interleave_across_engines(list(range(16)), contexts_per_me=4)
    engines = [cid // 4 for cid in order]
    for a, b in zip(engines, engines[1:]):
        assert a != b


def test_ring_requires_members():
    sim = Simulator()
    with pytest.raises(ValueError):
        TokenRing(sim, [])
    with pytest.raises(ValueError):
        TokenRing(sim, [1, 1])


def test_token_rotates_in_fixed_order():
    sim = Simulator()
    ring = TokenRing(sim, [0, 1, 2], pass_cycles=1)
    grants = []

    def member(i):
        for __ in range(3):
            yield from ring.acquire(i)
            grants.append(i)
            yield from ring.release(i)

    for i in (2, 0, 1):  # spawn order must not matter
        sim.spawn(member(i))
    sim.run()
    assert grants == [0, 1, 2] * 3
    assert ring.rotations == 9


def test_token_waits_for_slow_member():
    """Fixed rotation: a busy member stalls the whole ring."""
    sim = Simulator()
    ring = TokenRing(sim, [0, 1], pass_cycles=0)
    grants = []

    def fast():
        for __ in range(3):
            yield from ring.acquire(0)
            grants.append((0, sim.now))
            yield from ring.release(0)

    def slow():
        for __ in range(3):
            yield Delay(100)  # busy elsewhere
            yield from ring.acquire(1)
            grants.append((1, sim.now))
            yield from ring.release(1)

    sim.spawn(fast())
    sim.spawn(slow())
    sim.run()
    # The fast member's later grants are paced by the slow member.
    times = dict()
    for who, when in grants:
        times.setdefault(who, []).append(when)
    assert times[1] == [100, 200, 300]
    assert times[0][1] >= 100 and times[0][2] >= 200


def test_release_by_non_holder_rejected():
    sim = Simulator()
    ring = TokenRing(sim, [0, 1])

    def bad():
        yield from ring.release(1)

    sim.spawn(bad())
    with pytest.raises(RuntimeError):
        sim.run()


def test_acquire_by_non_member_rejected():
    sim = Simulator()
    ring = TokenRing(sim, [0, 1])

    def bad():
        yield from ring.acquire(5)

    sim.spawn(bad())
    with pytest.raises(ValueError):
        sim.run()


def test_pass_cycles_charged():
    sim = Simulator()
    ring = TokenRing(sim, [0], pass_cycles=7)
    times = []

    def member():
        for __ in range(2):
            yield from ring.acquire(0)
            yield from ring.release(0)
            times.append(sim.now)

    sim.spawn(member())
    sim.run()
    assert times == [7, 14]
