"""Tests for the MicroEngine/context execution model."""

import pytest

from repro.engine import Resource, Simulator
from repro.ixp.memory import Memory, MemoryKind
from repro.ixp.microengine import MicroContext, MicroEngine
from repro.ixp.params import DEFAULT_PARAMS, MemoryTiming


def make_me(sim):
    return MicroEngine(sim, 0, DEFAULT_PARAMS)


def test_one_context_runs_at_a_time():
    """Two contexts executing pure register code serialize on the engine."""
    sim = Simulator()
    me = make_me(sim)
    done = []

    def program(ctx, tag):
        yield from ctx.start()
        yield from ctx.busy(100)
        done.append((tag, sim.now))
        ctx._swap_out()

    sim.spawn(program(me.new_context(), "a"))
    sim.spawn(program(me.new_context(), "b"))
    sim.run()
    assert done[0][1] == 100
    assert done[1][1] >= 200  # serialized, plus swap overhead


def test_memory_reference_hides_latency():
    """While one context waits on memory, a sibling gets the engine."""
    sim = Simulator()
    me = make_me(sim)
    mem = Memory(sim, MemoryKind.DRAM, MemoryTiming(32, 52, 40, 8))
    mem.jitter.mask = 0
    trace = []

    def blocker(ctx):
        yield from ctx.start()
        yield from ctx.busy(10)
        yield from ctx.mem(mem, "read", "t")   # swaps out for ~52 cycles
        trace.append(("blocker-done", sim.now))
        ctx._swap_out()

    def worker(ctx):
        yield from ctx.start()
        yield from ctx.busy(30)
        trace.append(("worker-done", sim.now))
        ctx._swap_out()

    sim.spawn(blocker(me.new_context()))
    sim.spawn(worker(me.new_context()))
    sim.run()
    times = dict(trace)
    # The worker finished while the blocker was waiting on DRAM.
    assert times["worker-done"] < times["blocker-done"]


def test_busy_requires_engine():
    sim = Simulator()
    me = make_me(sim)
    ctx = me.new_context()

    def bad():
        yield from ctx.busy(5)  # never acquired the engine

    sim.spawn(bad())
    with pytest.raises(RuntimeError):
        sim.run()


def test_negative_busy_rejected():
    sim = Simulator()
    ctx = make_me(sim).new_context()

    def bad():
        yield from ctx.start()
        yield from ctx.busy(-1)

    sim.spawn(bad())
    with pytest.raises(ValueError):
        sim.run()


def test_bad_mem_op_rejected():
    sim = Simulator()
    me = make_me(sim)
    ctx = me.new_context()
    mem = Memory(sim, MemoryKind.SRAM, MemoryTiming(4, 22, 22, 4))

    def bad():
        yield from ctx.start()
        yield from ctx.mem(mem, "erase", "t")

    sim.spawn(bad())
    with pytest.raises(ValueError):
        sim.run()


def test_context_limit_per_engine():
    sim = Simulator()
    me = make_me(sim)
    for __ in range(4):
        me.new_context()
    with pytest.raises(RuntimeError):
        me.new_context()


def test_ctx_ids_are_global():
    sim = Simulator()
    me0 = MicroEngine(sim, 0, DEFAULT_PARAMS)
    me1 = MicroEngine(sim, 1, DEFAULT_PARAMS)
    assert me0.new_context().ctx_id == 0
    assert me0.new_context().ctx_id == 1
    assert me1.new_context().ctx_id == 4


def test_busy_cycles_accounted_for_utilization():
    sim = Simulator()
    me = make_me(sim)
    ctx = me.new_context()

    def program():
        yield from ctx.start()
        yield from ctx.busy(150)
        ctx._swap_out()

    sim.spawn(program())
    sim.run()
    assert me.busy_cycles == 150
    assert me.utilization(300) == pytest.approx(0.5)
    assert me.utilization(0) == 0.0


def test_lock_blocks_off_engine():
    """A context waiting on a hardware mutex must not hold its engine."""
    sim = Simulator()
    me = make_me(sim)
    mutex = Resource(sim, capacity=1)
    trace = []

    def holder(ctx):
        yield from ctx.start()
        yield from ctx.lock(mutex)
        ctx._swap_out()          # release engine while holding the lock
        from repro.engine import Delay
        yield Delay(100)
        ctx.unlock(mutex)
        trace.append(("holder", sim.now))

    def waiter(ctx):
        yield from ctx.start()
        yield from ctx.lock(mutex)   # blocks ~100 cycles, engine free
        ctx.unlock(mutex)
        trace.append(("waiter", sim.now))
        ctx._swap_out()

    def bystander(ctx):
        yield from ctx.start()
        yield from ctx.busy(20)
        trace.append(("bystander", sim.now))
        ctx._swap_out()

    sim.spawn(holder(me.new_context()))
    sim.spawn(waiter(me.new_context()))
    sim.spawn(bystander(me.new_context()))
    sim.run()
    times = dict(trace)
    assert times["bystander"] < 100  # ran while the waiter was blocked
    assert times["waiter"] >= 100


def test_ix_transfer_serializes_on_bus_slots():
    sim = Simulator()
    me = make_me(sim)
    MicroContext._IX_JITTER = None
    bus = Resource(sim, capacity=1)
    done = []

    def mover(ctx):
        yield from ctx.start()
        yield from ctx.ix_transfer(bus)
        done.append(sim.now)
        ctx._swap_out()

    sim.spawn(mover(me.new_context()))
    sim.spawn(mover(me.new_context()))
    sim.run()
    assert len(done) == 2
    # Second transfer waited for the first (24 cycles each + jitter).
    assert done[1] - done[0] >= 20
