"""Tests for the internet-realistic workload subsystem: seeded
determinism of every generator, distribution shape, the invariant-gated
scenario and its CLI, and the 1M-prefix acceptance run."""

import json

import pytest

from repro.cli import main as cli_main
from repro.net import IPv4Address
from repro.workloads import (bgp_prefixes, build_table, destinations_for,
                             flash_crowd, heavy_tail_mix, pareto_flow_sizes,
                             run_workloads, scan_storm, zipf_addresses,
                             zipf_flood)
from repro.workloads.generators import ZipfSampler, scan_addresses

SEED = 11
N = 4_000


# ---------------------------------------------------------------------------
# Seeded determinism: same seed -> identical stream, new seed -> new stream
# ---------------------------------------------------------------------------


def _dests(count=256, seed=SEED):
    return destinations_for(bgp_prefixes(count, seed=seed), seed=seed)


def _packet_sig(packets):
    return [(p.ip.src.value, p.ip.dst.value, p.tcp.src_port, len(p.payload))
            for p in packets]


@pytest.mark.parametrize("make", [
    lambda seed: bgp_prefixes(500, seed=seed),
    lambda seed: destinations_for(bgp_prefixes(200, seed=SEED), seed=seed),
    lambda seed: [a.value for a in zipf_addresses(300, _dests(), seed=seed)],
    lambda seed: pareto_flow_sizes(300, seed=seed),
    lambda seed: _packet_sig(zipf_flood(120, _dests(), seed=seed)),
    lambda seed: _packet_sig(heavy_tail_mix(120, _dests(), seed=seed)),
    lambda seed: _packet_sig(flash_crowd(120, _dests(), seed=seed)),
    lambda seed: _packet_sig(scan_storm(120, _dests(), seed=seed)),
], ids=["bgp_prefixes", "destinations_for", "zipf_addresses",
        "pareto_flow_sizes", "zipf_flood", "heavy_tail_mix",
        "flash_crowd", "scan_storm"])
def test_generators_are_seed_deterministic(make):
    assert make(3) == make(3)
    assert make(3) != make(4)


# ---------------------------------------------------------------------------
# Distribution shape
# ---------------------------------------------------------------------------


def test_bgp_prefixes_length_mix_and_uniqueness():
    specs = bgp_prefixes(N, seed=SEED)
    assert len(specs) == N
    assert len({(p, l) for p, l, _, __ in specs}) == N
    lengths = [l for _, l, __, ___ in specs]
    assert all(8 <= l <= 24 for l in lengths)
    # /24 dominance, as in real tables (~54% requested share).
    share_24 = lengths.count(24) / N
    assert 0.45 < share_24 < 0.62
    # Prefix values are properly masked (no host bits set).
    for prefix, length, port, mac in specs:
        value = IPv4Address(prefix).value
        assert value & ((1 << (32 - length)) - 1) == 0
        assert 0 <= port < 8


def test_bgp_prefixes_capacity_guard():
    # Only /8s allowed: the space holds 256 prefixes, so 300 must fail
    # loudly instead of livelocking.
    with pytest.raises(ValueError):
        bgp_prefixes(300, seed=SEED, length_mix={8: 1.0})
    assert len(bgp_prefixes(256, seed=SEED, length_mix={8: 1.0})) == 256


def test_destinations_fall_inside_their_prefix():
    specs = bgp_prefixes(500, seed=SEED)
    dests = destinations_for(specs, seed=SEED)
    for (prefix, length, _, __), dest in zip(specs, dests):
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
        assert dest & mask == IPv4Address(prefix).value


def test_zipf_popularity_is_skewed():
    dests = _dests(1000)
    counts = {}
    for addr in zipf_addresses(20_000, dests, s=1.1, seed=SEED):
        counts[addr.value] = counts.get(addr.value, 0) + 1
    top10 = sum(sorted(counts.values(), reverse=True)[:10])
    # Ten destinations out of a thousand carry a large share of probes.
    assert top10 / 20_000 > 0.25


def test_zipf_sampler_validates():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(10, s=-1.0)


def test_pareto_sizes_are_heavy_tailed():
    sizes = pareto_flow_sizes(2_000, alpha=1.2, seed=SEED)
    sizes_sorted = sorted(sizes)
    median = sizes_sorted[len(sizes) // 2]
    assert max(sizes) > 20 * median  # elephants exist
    assert min(sizes) >= 1
    assert max(pareto_flow_sizes(2_000, alpha=1.2, seed=SEED, cap=50)) <= 50


def test_heavy_tail_mix_respects_count_and_flows():
    # The stream ends at `count` packets or when every flow drains,
    # whichever comes first; flow volumes are the seeded Pareto draws.
    volume = sum(pareto_flow_sizes(32, seed=SEED))
    packets = list(heavy_tail_mix(600, _dests(), num_flows=32, seed=SEED))
    assert len(packets) == min(600, volume)
    flows = {(p.ip.src.value, p.tcp.src_port) for p in packets}
    assert 1 < len(flows) <= 32


def test_flash_crowd_ramps_toward_hot_destination():
    dests = _dests(512)
    packets = list(flash_crowd(4_000, dests, peak=0.8, seed=SEED))
    hot = max({p.ip.dst.value for p in packets},
              key=lambda v: sum(p.ip.dst.value == v for p in packets[-500:]))
    first = sum(p.ip.dst.value == hot for p in packets[:1000]) / 1000
    last = sum(p.ip.dst.value == hot for p in packets[-1000:]) / 1000
    assert last > 0.5 > first + 0.2  # ramp, not a constant share


def test_scan_storm_has_zero_locality():
    dests = _dests(300)
    packets = list(scan_storm(300, dests, seed=SEED))
    assert len({p.ip.dst.value for p in packets}) == 300  # no repeats
    assert list(a.value for a in scan_addresses(300, dests, seed=SEED)) == \
        [p.ip.dst.value for p in packets]


# ---------------------------------------------------------------------------
# Scenario + CLI
# ---------------------------------------------------------------------------


def test_build_table_loads_all_routes_on_both_backends():
    for backend in ("cpe", "bidirectional"):
        table, specs = build_table(800, seed=SEED, backend=backend)
        assert len(table) == 800
        # One generation bump for the whole bulk load.
        assert table.generation == 1
        for prefix, length, port, _ in specs[:20]:
            route = table.lookup(IPv4Address(destinations_for(
                [(prefix, length, port, _)], seed=0)[0]))
            assert route is not None


def test_run_workloads_invariants_hold():
    result = run_workloads(prefixes=3_000, probes=3_000, seed=SEED,
                           sample=400, linear_sample=6, withdraw_sample=64)
    assert result.ok, result.failures()
    assert result.exit_code() == 0
    assert {r.backend for r in result.reports} == {"cpe", "bidirectional"}
    for r in result.reports:
        assert r.phase("zipf").hit_rate > r.phase("scan_storm").hit_rate
        assert r.checks["withdrawals_clean"]
    artifact = result.artifact()
    assert artifact["schema"] == "repro-workloads-v1"
    json.dumps(artifact)  # must be serializable


def test_workloads_cli_smoke(capsys):
    rc = cli_main(["workloads", "--prefixes", "2000", "--probes", "2000",
                   "--seed", "5", "--sample", "300", "--backend", "cpe"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "all invariants held" in out


def test_workloads_cli_json(capsys):
    rc = cli_main(["workloads", "--prefixes", "1500", "--probes", "1500",
                   "--seed", "5", "--sample", "200", "--json"])
    assert rc == 0
    artifact = json.loads(capsys.readouterr().out)
    assert artifact["ok"] is True
    assert len(artifact["backends"]) == 2


# ---------------------------------------------------------------------------
# Acceptance: 1M-prefix table, 100k Zipf probes (slow tier)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_million_prefix_acceptance():
    result = run_workloads(prefixes=1_000_000, probes=100_000, seed=7,
                           backends=("cpe",), sample=600, linear_sample=3,
                           withdraw_sample=128)
    assert result.ok, result.failures()
    report = result.reports[0]
    assert report.prefixes == 1_000_000
    assert report.phase("zipf").probes == 100_000
    assert report.checks["trie_matches_reference"]
    assert report.checks["trie_matches_linear"]
    assert report.avg_probes <= 3
