"""Integration tests for the assembled chip: pipeline behaviour, rates,
functional forwarding through real ports, and the key shape properties
from the paper's evaluation."""

import pytest

from repro.ixp import ChipConfig, IXP1200, InputDiscipline, OutputDiscipline
from repro.ixp.programs import TimedVRP
from repro.net.mac import make_board_ports
from repro.net.traffic import standard_table, take, uniform_flood


SHORT = 80_000   # cycles; keep unit tests quick
WARM = 15_000


def synthetic_chip(**kwargs):
    return IXP1200(ChipConfig(traffic="synthetic", **kwargs))


def test_default_system_forwards_around_3_5_mpps():
    """The headline number: the full I.2+O.1 system forwards minimum-sized
    packets in the low-3-Mpps range (paper: 3.47 Mpps)."""
    chip = synthetic_chip()
    m = chip.measure(window=150_000, warmup=WARM)
    assert 3.0e6 < m.output_pps < 4.0e6
    assert m.queue_drops == 0 or m.queue_drops < m.output_packets * 0.01


def test_input_and_output_rates_balance():
    chip = synthetic_chip()
    m = chip.measure(window=SHORT, warmup=WARM)
    assert m.input_packets == pytest.approx(m.output_packets, rel=0.05)


def test_discipline_orderings_match_table1():
    """I.1 > I.2 > I.3 and O.1 > O.2 > O.3 (Table 1's qualitative result).

    Uses short windows; the benchmark suite measures precise values.
    """
    from repro.ixp.workbench import measure_input_rate, measure_output_rate

    i1 = measure_input_rate(discipline=InputDiscipline.PRIVATE, window=SHORT)
    i2 = measure_input_rate(discipline=InputDiscipline.PROTECTED, window=SHORT)
    i3 = measure_input_rate(discipline=InputDiscipline.PROTECTED, contention=True, window=SHORT)
    assert i1 > i2 > i3
    assert i3 < 0.6 * i2  # contention collapse is large

    o1 = measure_output_rate(discipline=OutputDiscipline.SINGLE_BATCHED, window=SHORT)
    o2 = measure_output_rate(discipline=OutputDiscipline.SINGLE_UNBATCHED, window=SHORT)
    o3 = measure_output_rate(discipline=OutputDiscipline.MULTI_INDIRECT, window=SHORT)
    assert o1 > o2 > o3


def test_vrp_blocks_reduce_rate_monotonically():
    """Figure 9's shape: more VRP blocks, lower forwarding rate."""
    from repro.ixp.workbench import measure_system_rate

    rates = []
    for blocks in (0, 16, 48):
        vrp = TimedVRP.blocks(blocks) if blocks else None
        rates.append(measure_system_rate(vrp=vrp, window=SHORT).output_pps)
    assert rates[0] > rates[1] > rates[2]
    # 48 combo blocks cost far more than half the capacity.
    assert rates[2] < rates[0] / 3


def test_contention_overhead_absorbed_by_vrp():
    """Figure 10's shape: with a large VRP budget, the contended and
    uncontended forwarding times converge."""
    from repro.ixp.workbench import measure_input_rate

    free0 = measure_input_rate(window=SHORT)
    jam0 = measure_input_rate(contention=True, window=SHORT)
    overhead_none = 1 / jam0 - 1 / free0

    vrp = TimedVRP.blocks(64)
    free64 = measure_input_rate(vrp=vrp, window=SHORT)
    jam64 = measure_input_rate(vrp=vrp, contention=True, window=SHORT)
    overhead_vrp = 1 / jam64 - 1 / free64

    assert overhead_none > 0
    assert overhead_vrp < overhead_none * 0.4


def test_dram_direct_is_slower_and_saturates_dram():
    """Section 3.5.2 ablation: FIFO bypass doubles the DRAM passes per
    MP, saturating the channel and capping below the FIFO design
    (paper: 2.69 vs 3.47 Mpps)."""
    from repro.ixp.workbench import measure_dram_direct_system, measure_system_rate

    direct = measure_dram_direct_system(window=SHORT)
    normal = measure_system_rate(window=SHORT)
    assert direct.output_pps < normal.output_pps
    assert direct.dram_utilization > 0.75  # channel near saturation
    assert direct.dram_utilization > normal.dram_utilization


def test_too_many_input_contexts_rejected():
    with pytest.raises(ValueError):
        IXP1200(ChipConfig(input_contexts=17))


def test_context_budget_enforced():
    with pytest.raises(ValueError):
        IXP1200(ChipConfig(input_contexts=16, output_contexts=12))


def test_unknown_traffic_mode_rejected():
    with pytest.raises(ValueError):
        IXP1200(ChipConfig(traffic="carrier-pigeon"))


def test_ports_mode_requires_ports():
    with pytest.raises(ValueError):
        IXP1200(ChipConfig(traffic="ports"))


def test_exceptional_packets_reach_sa_queue():
    chip = synthetic_chip(synthetic_exceptional_every=10)
    chip.measure(window=SHORT, warmup=WARM)
    assert chip.counters["exceptional"] > 0
    assert chip.sa_local_queue.enqueued > 0


def test_functional_forwarding_through_real_ports():
    """End-to-end: real packets in port 0, classified by the route cache,
    transmitted out the right egress port with the next-hop MAC."""
    from repro.engine import Simulator

    sim = Simulator()
    table = standard_table()
    ports = make_board_ports(sim)
    chip = IXP1200(
        ChipConfig(traffic="ports", num_ports=10, input_mes=4, output_mes=2),
        sim=sim,
        ports=ports,
        routing_table=table,
    )
    chip.route_cache.warm(
        [p.ip.dst for p in take(uniform_flood(16, num_ports=8), 16)]
    )
    packets = take(uniform_flood(16, num_ports=8), 16)
    ports[9].attach_source(packets)  # arrive on the gigabit port
    sim.run(until=600_000)
    transmitted = [p for port in ports for p in port.transmitted]
    assert len(transmitted) == 16
    # Each went out the port its destination prefix maps to.
    for packet in transmitted:
        route = table.lookup(packet.ip.dst)
        assert packet.meta["out_port"] == route.out_port
        assert packet.eth.dst == route.next_hop_mac


def test_route_cache_miss_goes_exceptional():
    from repro.engine import Simulator

    sim = Simulator()
    table = standard_table()
    ports = make_board_ports(sim)
    chip = IXP1200(
        ChipConfig(traffic="ports", num_ports=10),
        sim=sim, ports=ports, routing_table=table,
    )
    packets = take(uniform_flood(4, num_ports=8), 4)  # cache is cold
    ports[0].attach_source(packets)
    sim.run(until=300_000)
    assert chip.counters["exceptional"] == 4
    assert chip.sa_local_queue.enqueued == 4
    assert all(
        d.packet.meta["exceptional"] == "route-cache-miss"
        for d in chip.sa_local_queue._entries
    )


def test_measurement_window_excludes_warmup():
    chip = synthetic_chip()
    m = chip.measure(window=50_000, warmup=10_000)
    assert m.window_cycles == pytest.approx(50_000, abs=500)
    assert m.output_pps > 0
