"""The observability layer: recorder, export, determinism, profile.

The contract under test (docs/observability.md):

* the null recorder is a true no-op -- a simulation with observability
  left disabled is bit-identical to one that predates the subsystem;
* a live recorder's event stream is deterministic: same seed/scenario,
  same trace hash, across runs and across both schedulers;
* every export path emits *valid* JSON -- no ``Infinity``/``NaN``.
"""

import json

import pytest

from repro.engine import Simulator
from repro.ixp.chip import ChipConfig, IXP1200
from repro.ixp.programs import TimedVRP
from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    RingBuffer,
    TraceEvent,
    dumps,
    sanitize,
    trace_hash,
    trace_to_csv,
)


# ---------------------------------------------------------------------------
# Ring buffer
# ---------------------------------------------------------------------------


def test_ring_buffer_keeps_insertion_order():
    ring = RingBuffer(4)
    for i in range(3):
        ring.append(i)
    assert ring.to_list() == [0, 1, 2]
    assert ring.dropped == 0


def test_ring_buffer_overwrites_oldest_and_counts_drops():
    ring = RingBuffer(3)
    for i in range(7):
        ring.append(i)
    assert ring.to_list() == [4, 5, 6]
    assert ring.dropped == 4
    assert len(ring) == 3


def test_ring_buffer_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        RingBuffer(0)


# ---------------------------------------------------------------------------
# Null recorder
# ---------------------------------------------------------------------------


def test_null_recorder_is_disabled_and_inert():
    assert NULL_RECORDER.enabled is False
    assert isinstance(NULL_RECORDER, NullRecorder)
    # All hooks are no-ops and allocate no per-call state.
    NULL_RECORDER.record(0, "x", "y")
    NULL_RECORDER.account("x", "busy", 10)
    NULL_RECORDER.sample_queue(0, 1, 2)
    NULL_RECORDER.sample_series("s", 0, 1.0)
    assert NULL_RECORDER.packet_id(object()) is None
    assert not hasattr(NULL_RECORDER, "__dict__")  # __slots__ = ()


def test_simulation_objects_default_to_the_null_recorder():
    chip = IXP1200(ChipConfig())
    assert chip.recorder is NULL_RECORDER
    assert chip.sim.recorder is NULL_RECORDER
    assert chip.bank.recorder is NULL_RECORDER
    assert all(me.recorder is NULL_RECORDER for me in chip.engines)


def test_disabled_run_matches_pre_observability_behaviour():
    """With the recorder never enabled, the measurement must be identical
    to a second disabled run -- no hidden state leaks through hooks."""

    def run():
        chip = IXP1200(ChipConfig(vrp=TimedVRP.blocks(2)))
        m = chip.measure(window=15_000, warmup=5_000)
        return (m.input_mps, m.output_mps, chip.sim._events_processed)

    assert run() == run()


# ---------------------------------------------------------------------------
# Live recorder
# ---------------------------------------------------------------------------


def test_recorder_records_events_and_accounting():
    rec = Recorder(capacity=16)
    rec.record(10, "me0.ctx0", "mac_in", packet_id=0, detail=3)
    rec.record(20, "chip", "mac_out", packet_id=0)
    rec.account("me0.ctx0", "busy", 100)
    rec.account("me0.ctx0", "busy", 50)
    rec.sample_queue(15, 2, 4)
    assert rec.events.to_list() == [
        TraceEvent(10, "me0.ctx0", "mac_in", 0, 3),
        TraceEvent(20, "chip", "mac_out", 0, None),
    ]
    assert rec.accounting["me0.ctx0"]["busy"] == 150
    assert rec.queue_series[2].to_list() == [(15, 4)]
    assert rec.packet_timeline(0) == rec.events.to_list()
    assert rec.stage_summary() == {("me0.ctx0", "mac_in"): 1, ("chip", "mac_out"): 1}


def test_recorder_packet_ids_are_stable_and_sequential():
    class FakePacket:
        def __init__(self):
            self.meta = {}

    rec = Recorder()
    a, b = FakePacket(), FakePacket()
    assert rec.packet_id(a) == 0
    assert rec.packet_id(b) == 1
    assert rec.packet_id(a) == 0  # memoized in packet.meta
    assert rec.packet_id(None) is None


def test_recorder_utilization_derives_idle_remainder():
    rec = Recorder()
    rec.account("me0", "busy", 600)
    util = rec.utilization(1000)
    assert util["me0"]["busy"] == pytest.approx(0.6)
    assert util["me0"]["idle"] == pytest.approx(0.4)
    assert rec.utilization(0) == {}


def test_recorder_exposes_dropped_events():
    """Eviction blindness fix: a wrapped ring is visible on the recorder
    and in every export, so truncated analyses are flagged, not wrong."""
    rec = Recorder(capacity=2)
    for cycle in range(5):
        rec.record(cycle, "chip", "mac_in", packet_id=cycle)
    assert rec.dropped_events == 3
    doc = rec.to_dict()
    assert doc["dropped_events"] == 3
    assert doc["events_dropped"] == 3  # legacy key kept
    assert NULL_RECORDER.dropped_events == 0


def test_profile_notes_flag_truncated_trace():
    from repro.obs.profile import profile_scenario

    result = profile_scenario("fastpath", window=20_000, warmup=5_000,
                              trace_capacity=8)
    assert result.trace["dropped_events"] > 0
    assert any("truncated" in note for note in result.notes)
    assert "truncated" in result.table()


def test_recorder_queue_depth_stats():
    rec = Recorder()
    for cycle, depth in [(0, 1), (10, 3), (20, 2)]:
        rec.sample_queue(cycle, 7, depth)
    stats = rec.queue_depth_stats()[7]
    assert stats["samples"] == 3
    assert stats["mean_depth"] == pytest.approx(2.0)
    assert stats["max_depth"] == 3
    assert stats["last_depth"] == 2


# ---------------------------------------------------------------------------
# Export: sanitization, CSV, hashing
# ---------------------------------------------------------------------------


def test_sanitize_replaces_non_finite_floats():
    doc = {
        "ok": 1.5,
        "inf": float("inf"),
        "ninf": float("-inf"),
        "nan": float("nan"),
        "nested": [float("inf"), {"deep": float("nan")}],
        "tuple": (1, float("inf")),
        3: "int-key",
    }
    clean = sanitize(doc)
    assert clean["ok"] == 1.5
    assert clean["inf"] is None and clean["ninf"] is None and clean["nan"] is None
    assert clean["nested"] == [None, {"deep": None}]
    assert clean["tuple"] == [1, None]
    assert clean["3"] == "int-key"


def test_dumps_always_emits_valid_json():
    text = dumps({"spare": float("inf"), "rate": float("nan")})
    assert "Infinity" not in text and "NaN" not in text
    assert json.loads(text) == {"spare": None, "rate": None}


def test_trace_to_csv():
    events = [
        TraceEvent(1, "me0.ctx0", "mac_in", 0, 3),
        TraceEvent(2, "chip", "mac_out", 0, None),
    ]
    lines = trace_to_csv(events).splitlines()
    assert lines[0] == "cycle,component,event,packet_id,detail"
    assert lines[1] == "1,me0.ctx0,mac_in,0,3"
    assert len(lines) == 3


def test_trace_hash_sensitive_to_content():
    e = TraceEvent(1, "a", "b", None, None)
    assert trace_hash([e]) == trace_hash([e])
    assert trace_hash([e]) != trace_hash([e._replace(cycle=2)])
    assert trace_hash([]) == trace_hash([])


# ---------------------------------------------------------------------------
# Determinism: the trace is part of the reproducibility contract
# ---------------------------------------------------------------------------


def _traced_chip_hash(scheduler: str, until: int = 12_000) -> str:
    sim = Simulator(scheduler=scheduler)
    chip = IXP1200(ChipConfig(vrp=TimedVRP.blocks(4)), sim=sim)
    rec = chip.enable_observability(Recorder(), sample_period=1_000)
    sim.run(until=until)
    return trace_hash(rec.events.to_list())


def test_trace_hash_identical_across_runs():
    assert _traced_chip_hash("calendar") == _traced_chip_hash("calendar")


def test_trace_hash_identical_across_schedulers():
    assert _traced_chip_hash("calendar") == _traced_chip_hash("heap")


def test_trace_hash_golden():
    """Pinned alongside the golden paper numbers: any change to event
    ordering, hook placement, or the canonical hash encoding shows up
    here first.  If an *intentional* instrumentation change lands,
    re-pin the value (see docs/observability.md)."""
    assert _traced_chip_hash("calendar") == (
        "d1a3d2cacf452f1d326229ba7880794a15a8eb6a7c07aba7499f680e10de502f"
    )


def test_router_trace_hash_identical_across_runs():
    from repro.obs.profile import profile_scenario

    a = profile_scenario("router", window=30_000, warmup=8_000)
    b = profile_scenario("router", window=30_000, warmup=8_000)
    assert a.trace_hash == b.trace_hash
    assert a.throughput == b.throughput


# ---------------------------------------------------------------------------
# Profile scenarios and CLI
# ---------------------------------------------------------------------------


def test_profile_fastpath_measures_table2_pattern():
    from repro.obs.profile import profile_scenario

    result = profile_scenario("fastpath", window=40_000, warmup=10_000)
    stages = {row["stage"]: row for row in result.stages}
    assert stages["input"]["register_cycles_model"] == 171
    assert stages["output"]["register_cycles_model"] == 109
    # Table 2's per-MP memory pattern: input DRAM 0r/2w, SRAM 2r/1w.
    refs = stages["input"]["refs_per_mp"]
    assert refs.get("dram.read", 0.0) == pytest.approx(0.0)
    assert refs["dram.write"] == pytest.approx(2.0, rel=0.05)
    assert refs["sram.read"] == pytest.approx(2.0, rel=0.05)
    assert refs["sram.write"] == pytest.approx(1.0, rel=0.05)
    assert result.trace["events_dropped"] == 0
    table = result.table()
    assert "input" in table and "171" in table


def test_profile_router_traces_full_lifecycle():
    from repro.obs.profile import profile_scenario

    result = profile_scenario("router", window=60_000, warmup=15_000)
    events = {tuple(e)[2] for e in result.trace["events"]}
    assert {"mac_in", "classify", "enqueue", "dequeue", "mac_out"} <= events
    doc = json.loads(result.to_json())
    assert doc["scenario"] == "router"
    assert doc["trace"]["events"]


def test_profile_unknown_scenario_raises():
    from repro.obs.profile import profile_scenario

    with pytest.raises(ValueError, match="unknown profile scenario"):
        profile_scenario("warp-speed")


def test_profile_cli_writes_valid_trace_json(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "trace.json"
    assert main(["profile", "fastpath", "--window", "20000",
                 "--trace-out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "per-stage cost per MP" in printed
    text = out.read_text()
    assert "Infinity" not in text and "NaN" not in text
    doc = json.loads(text)
    assert doc["scenario"] == "fastpath"
    assert doc["stages"] and doc["trace"]["events"]
