"""Tests for the proportional-share (stride) scheduler."""

import pytest

from repro.hosts.scheduling import StrideScheduler


def drain(scheduler, rounds, work_per_item=100):
    """Run the scheduler for ``rounds`` selections, charging equal work."""
    served = []
    for __ in range(rounds):
        pick = scheduler.select()
        if pick is None:
            break
        name, __item = pick
        scheduler.charge(name, work_per_item)
        served.append(name)
    return served


def test_equal_shares_serve_equally():
    scheduler = StrideScheduler()
    scheduler.add_flow("a")
    scheduler.add_flow("b")
    for i in range(100):
        scheduler.enqueue("a", i)
        scheduler.enqueue("b", i)
    served = drain(scheduler, 100)
    assert abs(served.count("a") - served.count("b")) <= 2


def test_proportional_shares_respected():
    scheduler = StrideScheduler()
    scheduler.add_flow("heavy", tickets=300)
    scheduler.add_flow("light", tickets=100)
    for i in range(400):
        scheduler.enqueue("heavy", i)
        scheduler.enqueue("light", i)
    served = drain(scheduler, 200)
    heavy, light = served.count("heavy"), served.count("light")
    assert heavy / light == pytest.approx(3.0, rel=0.15)


def test_backlogged_flow_does_not_starve_when_other_empties():
    scheduler = StrideScheduler()
    scheduler.add_flow("a", tickets=100)
    scheduler.add_flow("b", tickets=100)
    for i in range(10):
        scheduler.enqueue("a", i)
    served = drain(scheduler, 10)
    assert served == ["a"] * 10


def test_new_flow_joins_at_current_pass():
    """A late-arriving flow must not get a huge burst from pass=0."""
    scheduler = StrideScheduler(queue_capacity=2000)
    scheduler.add_flow("old")
    for i in range(1000):
        scheduler.enqueue("old", i)
    drain(scheduler, 500)
    scheduler.add_flow("new")
    for i in range(100):
        scheduler.enqueue("new", i)
    served = drain(scheduler, 100)
    # Roughly alternating, not 100 consecutive "new".
    assert served.count("new") <= 60


def test_per_flow_queue_capacity_isolates_overload():
    scheduler = StrideScheduler(queue_capacity=10)
    scheduler.add_flow("attacker")
    scheduler.add_flow("victim")
    for i in range(1000):
        scheduler.enqueue("attacker", i)
    assert scheduler.total_dropped == 990
    assert scheduler.enqueue("victim", 0)  # victim unaffected
    stats = scheduler.stats()
    assert stats["victim"]["dropped"] == 0
    assert stats["attacker"]["dropped"] == 990


def test_unknown_flow_auto_registers():
    scheduler = StrideScheduler()
    assert scheduler.enqueue("surprise", 1)
    assert "surprise" in scheduler.flows()


def test_share_of():
    scheduler = StrideScheduler()
    scheduler.add_flow("a", tickets=100)
    scheduler.add_flow("b", tickets=300)
    assert scheduler.share_of("b") == pytest.approx(0.75)


def test_duplicate_and_bad_flows_rejected():
    scheduler = StrideScheduler()
    scheduler.add_flow("a")
    with pytest.raises(ValueError):
        scheduler.add_flow("a")
    with pytest.raises(ValueError):
        scheduler.add_flow("zero", tickets=0)
    with pytest.raises(KeyError):
        scheduler.remove_flow("ghost")


def test_select_empty_returns_none():
    assert StrideScheduler().select() is None
