"""Unit tests for the reliable per-neighbor control channel: wire
format + checksum, retransmit with deterministic backoff, ack/dedup
bookkeeping, and reset semantics."""

import pytest

from repro.control.channel import (ACK, HELLO, LSA, ControlMessage,
                                   NeighborChannel, corrupt_wire,
                                   decode_message, encode_message)
from repro.engine import Simulator


# ---------------------------------------------------------------------------
# Wire format.
# ---------------------------------------------------------------------------


def test_encode_decode_round_trip():
    wire = encode_message(LSA, src=3, seq=17, payload=b'{"router": 1}')
    msg = decode_message(wire)
    assert msg == ControlMessage(kind=LSA, src=3, seq=17,
                                 payload=b'{"router": 1}')


def test_hello_and_ack_round_trip():
    for kind in (HELLO, ACK):
        msg = decode_message(encode_message(kind, src=9, seq=0))
        assert msg is not None
        assert msg.kind == kind and msg.src == 9 and msg.payload == b""


def test_corrupted_wire_fails_checksum():
    wire = encode_message(LSA, src=1, seq=1, payload=b"payload")
    assert decode_message(corrupt_wire(wire)) is None


def test_corrupt_wire_changes_exactly_one_byte():
    wire = encode_message(LSA, src=1, seq=1, payload=b"x")
    bad = corrupt_wire(wire)
    assert len(bad) == len(wire)
    assert sum(1 for a, b in zip(wire, bad) if a != b) == 1


def test_garbage_decodes_to_none():
    for blob in (b"", b"nonsense", b"deadbeef|{not json}",
                 b"00000000|" + b'{"kind": "lsa"}'):
        assert decode_message(blob) is None


# ---------------------------------------------------------------------------
# Channel harness.
# ---------------------------------------------------------------------------


class Harness:
    """One channel wired to a simulator, with a capturable transmit."""

    def __init__(self, rto=1_000, rto_cap=8_000, max_attempts=3):
        self.sim = Simulator()
        self.sent = []            # (cycle, kind, wire)
        self.events = []          # (event, seq)
        self.channel = NeighborChannel(
            1, 2,
            transmit=lambda data, kind: self.sent.append(
                (self.sim.now, kind, data)),
            schedule=self.sim.schedule,
            now=lambda: self.sim.now,
            rto=rto, rto_cap=rto_cap, max_attempts=max_attempts,
        )
        self.channel.on_event = lambda event, seq: self.events.append(
            (event, seq))

    def run(self, cycles):
        self.sim.run(until=self.sim.now + cycles)


def test_send_lsa_transmits_once_and_acks_stop_retransmit():
    h = Harness()
    seq = h.channel.send_lsa(b"lsa-body")
    assert [kind for _, kind, _ in h.sent] == [LSA]
    h.channel.on_ack(seq)
    h.run(20_000)
    assert len(h.sent) == 1
    assert h.channel.unacked == 0
    assert h.channel.retransmits == 0
    assert ("lsa_ack", seq) in h.events


def test_unacked_lsa_retransmits_with_doubling_backoff():
    h = Harness(rto=1_000, rto_cap=8_000, max_attempts=5)
    h.channel.send_lsa(b"lsa-body")
    h.run(40_000)
    times = [cycle for cycle, kind, _ in h.sent if kind == LSA]
    # first transmit at 0, then timeouts at 1k, +2k, +4k, +8k (cap).
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert gaps == [1_000, 2_000, 4_000, 8_000]
    assert h.channel.retransmits == 4


def test_lsa_abandoned_after_max_attempts():
    h = Harness(max_attempts=3)
    seq = h.channel.send_lsa(b"lsa-body")
    h.run(60_000)
    assert len(h.sent) == 3           # original + 2 retransmits
    assert h.channel.abandoned == 1
    assert h.channel.unacked == 0
    assert ("lsa_abandoned", seq) in h.events


def test_max_attempts_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        NeighborChannel(1, 2, transmit=lambda d, k: None,
                        schedule=sim.schedule, now=lambda: sim.now,
                        max_attempts=0)


def test_receiver_always_acks_and_dedups():
    h = Harness()
    assert h.channel.on_lsa(5, b"payload") == b"payload"
    assert h.channel.on_lsa(5, b"payload") is None   # duplicate suppressed
    assert h.channel.duplicates == 1
    # Both deliveries were acked (the first ack may have been lost).
    acks = [kind for _, kind, _ in h.sent if kind == ACK]
    assert len(acks) == 2
    assert h.channel.acks_sent == 2


def test_hellos_are_fire_and_forget():
    h = Harness()
    h.channel.send_hello(b'{"seen": []}')
    h.run(30_000)
    assert [kind for _, kind, _ in h.sent] == [HELLO]
    assert h.channel.unacked == 0
    assert h.channel.hellos_sent == 1


def test_reset_clears_pending_but_sequence_stays_monotonic():
    h = Harness()
    seq1 = h.channel.send_lsa(b"one")
    h.channel.reset()
    assert h.channel.unacked == 0
    seq2 = h.channel.send_lsa(b"two")
    assert seq2 > seq1
    # The armed timer for the pre-reset LSA must not fire a retransmit.
    h.run(5_000)
    lsas = [(c, w) for c, kind, w in h.sent if kind == LSA]
    assert len(lsas) == 2 + h.channel.retransmits
    assert all(b"one" not in w or c == 0 for c, w in lsas)


def test_stale_ack_after_reset_is_harmless():
    h = Harness()
    seq = h.channel.send_lsa(b"one")
    h.channel.reset()
    h.channel.on_ack(seq)             # ack for a flushed LSA
    assert h.channel.acks_received == 0
    assert h.channel.unacked == 0
