"""Randomized long-run property test for the lookup backends.

Drives 50k add/reprogram/remove operations (12.5k per configuration:
three CPE stride layouts plus the bidirectional pipeline) against an
independent mirror of the route set, checking after every mutation that
``lookup`` agrees with a mirror-computed longest-prefix match, with
periodic cross-checks against ``lookup_linear`` and
``lookup_reference``."""

import random
from typing import Dict, Optional, Tuple

import pytest

from repro.net import IPv4Address
from repro.net.routing import make_routing_table

OPS = 12_500
CONFIGS = [
    ("cpe", {"strides": (16, 8, 8)}),
    ("cpe", {"strides": (8, 8, 8, 8)}),
    ("cpe", {"strides": (16, 8, 4, 4)}),
    ("bidirectional", {}),
]


def _mask(length: int) -> int:
    return (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0


def _mirror_lpm(live: Dict[Tuple[int, int], int], value: int) -> Optional[Tuple[int, int, int]]:
    """Longest-prefix match computed from the mirror alone."""
    for length in range(32, -1, -1):
        key = (value & _mask(length), length)
        if key in live:
            return (key[0], length, live[key])
    return None


def _random_route(rng: random.Random) -> Tuple[int, int]:
    # No /0 here: a default route expands across every root slot, which
    # makes each withdrawal-triggered rebuild O(2^stride) and the run
    # quadratic.  Default-route semantics are covered by the unit tests.
    length = rng.choice((8, 12, 15, 16, 17, 20, 22, 24, 28, 32))
    value = rng.getrandbits(32) & _mask(length)
    return value, length


@pytest.mark.slow
@pytest.mark.parametrize(
    "backend,kwargs", CONFIGS,
    ids=["cpe-16-8-8", "cpe-8x4", "cpe-16-8-4-4", "bidirectional"])
def test_randomized_ops_agree_with_mirror(backend, kwargs):
    rng = random.Random(f"lookup-props:{backend}:{sorted(kwargs.items())}")
    table = make_routing_table(backend, **kwargs)
    live: Dict[Tuple[int, int], int] = {}

    def check(value: int) -> None:
        addr = IPv4Address(value)
        got = table.lookup(addr)
        expected = _mirror_lpm(live, value)
        if expected is None:
            assert got is None, f"ghost route for {addr}: {got}"
        else:
            assert got is not None, f"lost route for {addr}, want {expected}"
            assert (got.prefix.value, got.length, got.out_port) == expected
        assert got == table.lookup_reference(addr)

    live_keys = []  # unordered view for O(1) random picks
    # Keep the live set near an equilibrium: CPE withdrawal rebuilds the
    # trie (O(routes)), so an ever-growing set would make 50k ops
    # quadratic without testing anything extra.
    target_live = 150

    def pick_live():
        """Random live key; purges dead keys (swap-remove) as it goes so
        the pick distribution does not drift toward no-op removals."""
        while live_keys:
            i = rng.randrange(len(live_keys))
            key = live_keys[i]
            if key in live:
                return key
            live_keys[i] = live_keys[-1]
            live_keys.pop()
        return None

    for op_i in range(OPS):
        roll = rng.random()
        add_p = 0.55 if len(live) < target_live else 0.10
        if roll < add_p or not live:
            value, length = _random_route(rng)
            port = rng.randrange(16)
            if (value, length) not in live:
                live_keys.append((value, length))
            live[(value, length)] = port
            table.add(str(IPv4Address(value)), length, port)
        elif roll < add_p + 0.30:
            picked = pick_live()
            value, length = picked
            # Exercise both spellings of absence alongside the removal.
            assert table.discard(str(IPv4Address(0)), 31) is None
            del live[(value, length)]
            table.remove(str(IPv4Address(value)), length)
        elif roll < add_p + 0.35:
            # Reprogram: a bulk batch of adds + withdrawals, one commit.
            with table.bulk():
                for __ in range(rng.randrange(2, 10)):
                    value, length = _random_route(rng)
                    port = rng.randrange(16)
                    if (value, length) not in live:
                        live_keys.append((value, length))
                    live[(value, length)] = port
                    table.add(str(IPv4Address(value)), length, port)
                for __ in range(rng.randrange(0, 4)):
                    value, length = live_keys[rng.randrange(len(live_keys))]
                    if (value, length) in live:
                        del live[(value, length)]
                        table.remove(str(IPv4Address(value)), length)
        # else: probe-only round.

        check(rng.getrandbits(32))
        if live:
            value, length = live_keys[rng.randrange(len(live_keys))]
            host = rng.getrandbits(32 - length) if length < 32 else 0
            check((value & _mask(length)) | host)
        if op_i % 500 == 0:
            probe = IPv4Address(rng.getrandbits(32))
            assert table.lookup(probe) == table.lookup_linear(probe)

    assert len(table) == len(live)
    # Final dense sweep: the structure and mirror agree everywhere sampled.
    for __ in range(500):
        check(rng.getrandbits(32))
