"""Every example script must run clean: they are the documentation's
executable half.  Each defines main() with its own assertions."""

import importlib.util
import pathlib

import pytest

# Each example runs a full simulation; the whole module rides in the
# nightly slow lane.
pytestmark = pytest.mark.slow

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), EXAMPLES_DIR / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


@pytest.mark.parametrize("name", EXAMPLE_FILES)
def test_example_runs_clean(name, capsys):
    output = run_example(name, capsys)
    assert "===" in output  # every example prints a banner


def test_performance_monitoring_reports_observability(capsys):
    """The monitoring example doubles as the observability demo: it must
    print recorder-derived infrastructure stats alongside flow counters."""
    output = run_example("performance_monitoring.py", capsys)
    assert "traced packets" in output
    assert "trace hash" in output


def test_all_examples_present():
    expected = {
        "quickstart.py", "performance_monitoring.py", "tcp_splicing_proxy.py",
        "syn_flood_defense.py", "wavelet_video.py", "mpls_switch.py",
        "cluster_router.py", "routing_protocol.py", "latency_profile.py",
        "multi_router_network.py",
    }
    assert expected <= set(EXAMPLE_FILES)
