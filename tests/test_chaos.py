"""The chaos campaign: seeded schedule generation, trial invariants,
campaign byte-identity, schedule shrinking, and the CLI surface."""

import json

import pytest

from repro.chaos import (FAULT_KINDS, FaultSpec, generate_schedule,
                         run_campaign, run_trial, schedule_from_json,
                         schedule_to_json, shrink_schedule)
from repro.chaos.campaign import (RING_LINKS, RING_ROUTERS, bench_rows,
                                  replay_schedule)
from repro.chaos.shrink import ddmin
from repro.cli import main

WINDOW = 90_000


# ---------------------------------------------------------------------------
# Schedule generation + serialization.
# ---------------------------------------------------------------------------


def test_generator_is_deterministic_per_seed_and_trial():
    a = generate_schedule(7, 3, RING_LINKS, RING_ROUTERS, WINDOW)
    b = generate_schedule(7, 3, RING_LINKS, RING_ROUTERS, WINDOW)
    assert a == b
    assert generate_schedule(7, 4, RING_LINKS, RING_ROUTERS, WINDOW) != a
    assert generate_schedule(8, 3, RING_LINKS, RING_ROUTERS, WINDOW) != a


def test_generated_schedules_are_well_formed():
    for trial in range(10):
        schedule = generate_schedule(7, trial, RING_LINKS, RING_ROUTERS,
                                     WINDOW)
        assert 2 <= len(schedule) <= 5
        assert schedule == sorted(schedule,
                                  key=lambda f: (f.at, f.kind, f.target))
        for spec in schedule:
            assert spec.kind in FAULT_KINDS
            if spec.kind == "router-restart":
                assert spec.target in RING_ROUTERS
            else:
                assert spec.target in RING_LINKS
            # Every fault starts, ends and leaves recovery room inside
            # the window.
            assert 0 <= spec.at < WINDOW // 2
            assert spec.at + spec.duration < WINDOW


def test_schedule_json_round_trip():
    schedule = generate_schedule(7, 0, RING_LINKS, RING_ROUTERS, WINDOW)
    assert schedule_from_json(schedule_to_json(schedule)) == schedule


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(kind="meteor-strike", target="r1", at=0, duration=100)
    with pytest.raises(ValueError):
        FaultSpec(kind="link-flap", target="r1--r2", at=-1, duration=100)
    with pytest.raises(ValueError):
        FaultSpec(kind="ctrl-loss", target="r1--r2", at=0, duration=100,
                  drop=0.7, corrupt=0.4)


# ---------------------------------------------------------------------------
# Trials + campaign.
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_seed7_trials_recover():
    for trial in range(3):
        result = run_trial(7, trial)
        assert result.ok, (trial, result.violations)
        assert result.detections > 0  # every schedule provokes detections


@pytest.mark.slow
def test_campaign_artifact_is_byte_identical_per_seed():
    first = run_campaign(7, 2).artifact()
    second = run_campaign(7, 2).artifact()
    assert (json.dumps(first, sort_keys=True)
            == json.dumps(second, sort_keys=True))


@pytest.mark.slow
def test_empty_schedule_is_a_healthy_baseline():
    result = run_trial(7, 0, schedule=[])
    assert result.ok
    assert result.detections == 0


def test_bench_rows_shape():
    campaign = run_campaign(7, 0)
    rows = bench_rows(campaign)
    assert rows["chaos_trials_passed"] == {"paper": 0, "measured": 0}
    assert set(rows) == {"chaos_trials_passed", "chaos_violating_trials",
                         "chaos_faults_injected", "chaos_detections",
                         "chaos_reconvergences"}


# ---------------------------------------------------------------------------
# Shrinking.
# ---------------------------------------------------------------------------


def _spec(i, kind="link-flap"):
    target = "r1" if kind == "router-restart" else "r1--r2"
    return FaultSpec(kind=kind, target=target, at=i * 1_000, duration=10_000)


def test_ddmin_finds_single_culprit():
    culprit = _spec(3, kind="router-restart")
    schedule = [_spec(0), _spec(1), _spec(2), culprit, _spec(4), _spec(5)]
    runs = []

    def oracle(subset):
        runs.append(len(subset))
        return culprit in subset

    assert shrink_schedule(schedule, oracle) == [culprit]
    # ddmin beats brute force: far fewer oracle calls than 2^6 subsets.
    assert len(runs) < 30


def test_ddmin_finds_interacting_pair_and_preserves_order():
    a, b = _spec(1), _spec(4, kind="router-restart")
    schedule = [_spec(0), a, _spec(2), _spec(3), b, _spec(5)]

    def oracle(subset):
        return a in subset and b in subset

    minimal = shrink_schedule(schedule, oracle)
    assert minimal == [a, b]  # both kept, original order intact


def test_ddmin_keeps_full_set_when_all_needed():
    schedule = [_spec(i) for i in range(3)]

    def oracle(subset):
        return len(subset) == 3

    assert ddmin(schedule, oracle) == schedule


def test_shrink_refuses_passing_schedule():
    with pytest.raises(ValueError):
        shrink_schedule([_spec(0)], lambda subset: False)


@pytest.mark.slow
def test_shrinker_reduces_planted_regression_to_minimal_replay():
    """The acceptance demo: a retransmit budget of 1 plants a fragile
    control plane; trial 1's 5-fault schedule violates
    ``flooding-reliable``, and the shrinker reduces it to a single
    ctrl-loss fault that still reproduces -- and replays from JSON."""
    full = run_trial(7, 1, ctrl_max_attempts=1)
    assert not full.ok and "flooding-reliable" in full.violations
    assert len(full.schedule) == 5

    def reproduces(subset):
        return not run_trial(7, 1, schedule=subset,
                             ctrl_max_attempts=1).ok

    minimal = shrink_schedule(full.schedule, reproduces)
    assert len(minimal) == 1
    assert minimal[0].kind == "ctrl-loss"
    # 1-minimality: the empty schedule does not reproduce.
    assert run_trial(7, 1, schedule=[], ctrl_max_attempts=1).ok
    # Round trip through the replay artifact.
    replayed = schedule_from_json(schedule_to_json(minimal))
    assert replayed == minimal
    result = replay_schedule(replayed, seed=7, ctrl_max_attempts=1)
    assert not result.ok and "flooding-reliable" in result.violations
    # The same schedule on the default retransmit budget recovers:
    # the regression is the handicap, not the faults.
    assert replay_schedule(replayed, seed=7).ok


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_cli_chaos_smoke(tmp_path, capsys):
    artifact = tmp_path / "campaign.json"
    rc = main(["chaos", "--seed", "7", "--trials", "1", "--no-bench",
               "--artifact-out", str(artifact)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "chaos campaign (seed 7" in out
    doc = json.loads(artifact.read_text())
    assert doc["ok"] is True and doc["trials"] == 1


@pytest.mark.slow
def test_cli_chaos_shrink_and_replay(tmp_path, capsys):
    minimal = tmp_path / "minimal.json"
    rc = main(["chaos", "--seed", "7", "--trials", "2", "--max-attempts", "1",
               "--shrink", "--minimal-out", str(minimal), "--no-bench"])
    assert rc == 1
    assert "minimal schedule for trial" in capsys.readouterr().out
    schedule = schedule_from_json(minimal.read_text())
    assert 1 <= len(schedule) <= 5

    rc = main(["chaos", "--seed", "7", "--replay", str(minimal),
               "--max-attempts", "1", "--no-bench"])
    assert rc == 1
    assert "VIOLATIONS" in capsys.readouterr().out
    rc = main(["chaos", "--seed", "7", "--replay", str(minimal),
               "--no-bench"])
    assert rc == 0
    assert "recovered" in capsys.readouterr().out
