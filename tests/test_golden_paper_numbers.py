"""Golden-number regression suite: the paper's headline measurements.

Every number the reproduction claims to hit is locked in here with a
tolerance band, so a change that silently moves a published result fails
a test instead of a reader's eyeball.  Bands come from
``docs/calibration.md``: published constants are exact by construction,
emergent rates get the band the corresponding benchmark already asserts
(20 % for Table 1, 8-13 % for the host paths), and the known deviations
(output rows 9-14 % low) sit inside those bands.

These are full-pipeline simulations, so the module is ``slow``: it runs
in the nightly lane alongside the benchmarks, not on every push.
"""

import pytest

from repro.hosts.harness import measure_pentium_path, measure_strongarm_path
from repro.ixp.programs import TimedVRP
from repro.ixp.workbench import (
    figure7_series,
    measure_system_rate,
    table1_rows,
)

pytestmark = pytest.mark.slow

# Paper values, Mpps (Table 1; 4 input / 2 output MicroEngines).
TABLE1_PAPER = {
    "I.1 private queues in regs": 3.75,
    "I.2 protected public queues no contention": 3.47,
    "I.3 protected public queues max contention": 1.67,
    "O.1 single queue with batching": 3.78,
    "O.2 single queue without batching": 3.41,
    "O.3 multiple queues with indirection": 3.29,
}


def test_table1_disciplines_golden():
    rows = table1_rows(window=100_000)
    # Orderings first: these are what the paper's discussion rests on.
    assert rows["I.1 private queues in regs"] > rows["I.2 protected public queues no contention"]
    assert (
        rows["I.2 protected public queues no contention"]
        > rows["I.3 protected public queues max contention"]
    )
    assert rows["O.1 single queue with batching"] > rows["O.2 single queue without batching"]
    assert rows["O.2 single queue without batching"] > rows["O.3 multiple queues with indirection"]
    # Contention collapses the input stage by more than 2x (row I.3).
    assert (
        rows["I.3 protected public queues max contention"]
        < 0.55 * rows["I.2 protected public queues no contention"]
    )
    # Magnitudes: 20 % bands (calibration.md notes output rows run
    # 9-14 % low; that deviation must stay inside the band, not grow).
    for name, paper in TABLE1_PAPER.items():
        assert rows[name] == pytest.approx(paper, rel=0.20), name


def test_fig7_input_plateau_golden():
    input_series, output_series = figure7_series(
        context_counts=[1, 4, 8, 16, 24], window=60_000
    )
    # The input stage plateaus around 3.5 Mpps at 16 contexts (Figure 7)
    # and cannot use more than 16 (FIFO slots).
    assert 3.0 < input_series[16] < 4.0
    assert 16 == max(input_series)
    # Rates climb with context count up to the plateau.
    assert input_series[1] < input_series[4] < input_series[8] < input_series[16]
    assert output_series[1] < output_series[4] < output_series[8]
    # Output keeps scaling past 16 (it is not FIFO-slot limited).
    assert output_series[24] >= output_series[16] * 0.95


def test_path_a_full_system_golden():
    """Path A: the full MicroEngine pipeline forwards ~3.38 Mpps."""
    m = measure_system_rate(window=50_000)
    assert m.output_pps == pytest.approx(3.38e6, rel=0.10)
    # Nothing is silently lost at the steady state.
    assert m.queue_drops == 0
    assert m.lost_buffers == 0


def test_path_a_vrp_budget_golden():
    """A full-budget VRP (16 combo blocks) still clears ~1.5 Mpps and
    stays below the null-forwarder rate."""
    null = measure_system_rate(window=50_000)
    vrp = measure_system_rate(vrp=TimedVRP.blocks(16), window=50_000)
    assert vrp.output_pps < null.output_pps
    assert vrp.output_pps == pytest.approx(1.6e6, rel=0.15)


def test_path_b_strongarm_golden():
    """Path B: null local forwarder on the StrongARM, polling mode,
    ~526 Kpps (section 3.6)."""
    rate = measure_strongarm_path(window=80_000)
    assert rate == pytest.approx(526e3, rel=0.08)


def test_path_c_pentium_golden():
    """Path C: MicroEngines -> StrongARM -> PCI -> Pentium -> back,
    ~534 Kpps at 64 bytes (Table 4)."""
    m = measure_pentium_path(64, window=80_000)
    assert m.packet_bytes == 64
    assert m.rate_pps == pytest.approx(534e3, rel=0.10)
    # The Pentium has spare cycles at this rate; the StrongARM is the
    # bottleneck (Table 4's 64-byte row).
    assert m.pentium_spare_cycles > 0
    assert m.strongarm_spare_cycles < m.pentium_spare_cycles
