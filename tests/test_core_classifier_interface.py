"""Tests for the flow table, classifier and the four-operation control
interface."""

import pytest

from repro.core.admission import AdmissionControl
from repro.core.classifier import Classifier, FlowTable
from repro.core.forwarder import ALL, ForwarderSpec, Where
from repro.core.forwarders import minimal_ip, port_filter, syn_monitor, tcp_proxy, tcp_splicer
from repro.core.interface import RouterInterface
from repro.core.vrp import RegOps, VRPProgram
from repro.ixp.istore import InstructionStore
from repro.net.addresses import IPv4Address
from repro.net.packet import FlowKey, make_tcp_packet


def flow_key(i=1):
    return FlowKey(IPv4Address(f"1.1.1.{i}"), 1000, IPv4Address("2.2.2.2"), 80)


def make_interface(istores=0):
    table = FlowTable()
    classifier = Classifier(table)
    stores = [InstructionStore() for __ in range(istores)]
    return RouterInterface(table, classifier, AdmissionControl(), istores=stores), table, classifier


# -- FlowTable -------------------------------------------------------------------


def test_flow_table_per_flow_and_general():
    table = FlowTable()
    general = table.add(ALL, syn_monitor())
    per_flow = table.add(flow_key(), tcp_splicer())
    assert general.is_general and not per_flow.is_general
    assert table.match_per_flow(flow_key()) is per_flow
    assert table.match_per_flow(flow_key(9)) is None
    assert len(table) == 2


def test_flow_table_rejects_duplicate_key():
    table = FlowTable()
    table.add(flow_key(), tcp_splicer())
    with pytest.raises(ValueError):
        table.add(flow_key(), port_filter())


def test_flow_table_remove():
    table = FlowTable()
    entry = table.add(flow_key(), tcp_splicer())
    table.remove(entry.fid)
    assert table.match_per_flow(flow_key()) is None
    with pytest.raises(KeyError):
        table.get(entry.fid)
    with pytest.raises(KeyError):
        table.remove(entry.fid)


# -- Classifier ---------------------------------------------------------------------


def test_classifier_validates_headers():
    table = FlowTable()
    classifier = Classifier(table)
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2")
    packet.ip.packed()  # correct checksum
    decision = classifier.classify_packet(packet)
    assert not decision.get("drop")
    bad = make_tcp_packet("1.1.1.1", "2.2.2.2")
    bad.ip.packed()
    bad.ip.checksum ^= 0xFFFF  # corrupt stored checksum
    decision = classifier.classify_packet(bad)
    assert decision["drop"] and decision["reason"] == "bad-checksum"
    assert classifier.validation_failures == 1


def test_classifier_matches_per_flow():
    table = FlowTable()
    classifier = Classifier(table)
    entry = table.add(flow_key(), tcp_splicer())
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", src_port=1000, dst_port=80)
    packet.ip.packed()
    decision = classifier.classify_packet(packet)
    assert decision["entry"] is entry
    assert entry.packets_matched == 1


def test_classifier_sends_pe_flows_exceptional():
    table = FlowTable()
    classifier = Classifier(table)
    table.add(flow_key(), tcp_proxy())
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", src_port=1000, dst_port=80)
    packet.ip.packed()
    decision = classifier.classify_packet(packet)
    assert decision["exceptional"]
    assert decision["sa_target"] == "pentium"


def test_timed_vrp_combines_general_and_per_flow():
    table = FlowTable()
    classifier = Classifier(table)
    general = table.add(ALL, syn_monitor())
    per_flow = table.add(flow_key(), tcp_splicer())
    base = classifier.timed_vrp_for(None)
    with_flow = classifier.timed_vrp_for(per_flow)
    splicer_regs = tcp_splicer().program.register_op_count()
    assert with_flow.reg_cycles - base.reg_cycles == splicer_regs
    assert base.sram_writes == 1  # the SYN monitor's counter write


def test_timed_vrp_cache_invalidation():
    table = FlowTable()
    classifier = Classifier(table)
    before = classifier.timed_vrp_for(None)
    table.add(ALL, syn_monitor())
    classifier.invalidate()
    after = classifier.timed_vrp_for(None)
    assert after.reg_cycles > before.reg_cycles


def test_combined_action_stops_at_drop():
    table = FlowTable()
    classifier = Classifier(table)
    table.add(ALL, port_filter([(80, 80)]))
    entry = table.get(table.general_entries[0].fid)
    entry.state.update(entry.spec.initial_state)
    table.add(ALL, syn_monitor())
    timed = classifier.timed_vrp_for(None)
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2", dst_port=80)
    timed.action(packet, None)
    assert packet.meta["vrp_drop"]
    assert packet.meta["dropped_by"] == "port-filter"


# -- RouterInterface -----------------------------------------------------------------


def test_install_returns_fid_and_records_entry():
    interface, table, __ = make_interface()
    fid = interface.install(ALL, syn_monitor())
    assert table.get(fid).spec.name == "syn-monitor"
    assert interface.installs == 1


def test_install_loads_istores():
    interface, __, __c = make_interface(istores=4)
    interface.install(ALL, minimal_ip())
    interface.install(flow_key(), tcp_splicer())
    for store in interface.istores:
        installed = store.installed()
        assert any("minimal-ip" in name for name in installed)
        assert any("tcp-splicer" in name for name in installed)
    # general grows down, per-flow grows up
    chains = interface.istores[0].general_chain()
    assert any("minimal-ip" in name for name in chains)


def test_remove_frees_istore_room():
    interface, __, __c = make_interface(istores=2)
    fid = interface.install(ALL, minimal_ip())
    used = interface.istores[0].used_by_extensions
    assert used > 0
    interface.remove(fid)
    assert interface.istores[0].used_by_extensions == 0
    assert interface.removes == 1


def test_getdata_setdata_share_state():
    interface, table, __ = make_interface()
    fid = interface.install(flow_key(), port_filter([(22, 22)]))
    data = interface.getdata(fid)
    assert data["ranges"] == [(22, 22)]
    interface.setdata(fid, {"ranges": [(8000, 8080)]})
    assert table.get(fid).state["ranges"] == [(8000, 8080)]
    # getdata returns a copy, not the live dict.
    interface.getdata(fid)["ranges"].append((1, 2))
    assert table.get(fid).state["ranges"] == [(8000, 8080)]


def test_install_zeroes_then_seeds_state():
    interface, table, __ = make_interface()
    spec = port_filter([(1, 10)])
    spec.initial_state["extra"] = 7
    fid = interface.install(flow_key(), spec)
    assert interface.getdata(fid) == {"ranges": [(1, 10)], "extra": 7}


def test_install_key_type_checked():
    interface, __, __c = make_interface()
    with pytest.raises(TypeError):
        interface.install(("not", "a", "flow", "key"), syn_monitor())


def test_install_where_mismatch_rejected():
    interface, __, __c = make_interface()
    with pytest.raises(ValueError):
        interface.install(ALL, syn_monitor(), where=Where.PE)


def test_install_invalidates_classifier_cache():
    interface, __, classifier = make_interface()
    base = classifier.timed_vrp_for(None)
    interface.install(ALL, syn_monitor())
    after = classifier.timed_vrp_for(None)
    assert after.reg_cycles > base.reg_cycles


def test_sram_state_exhaustion():
    interface, __, __c = make_interface()
    from repro.core.admission import AdmissionError

    big = ForwarderSpec(
        name="stateful", where=Where.ME,
        program=VRPProgram("stateful", [RegOps(5)]),
        state_bytes=0,
    )
    interface._next_sram = interface.__class__.__mro__[0].__dict__.get("x", 0) or 0
    # Force the allocator to the limit and expect failure.
    from repro.core.interface import SRAM_STATE_LIMIT

    interface._next_sram = SRAM_STATE_LIMIT - 4
    with pytest.raises(AdmissionError):
        interface.install(flow_key(5), big, size=64)
