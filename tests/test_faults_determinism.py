"""Seed determinism of the fault-injection subsystem.

The campaign's incident log is its canonical artifact: with the same
seed it must serialize byte-identically run after run (CI diffs it, the
trajectory record stores its hash), and different seeds must actually
move the fault schedule -- otherwise "seeded" is decoration.

Smaller-than-default windows keep these in the fast lane; determinism
does not depend on the window length.
"""

from repro.core.router import Router, RouterConfig
from repro.faults.campaign import run_campaign

WINDOW = 60_000
WARMUP = 10_000


def _artifacts(scenario, seed):
    result = run_campaign(scenario, seed=seed, window=WINDOW, warmup=WARMUP)[0]
    return result.incident_log_json(), result.trace_hash, result.faulted


def test_same_seed_same_incident_log_bytes():
    """Schedule-level randomness (crash times) is pinned by the seed."""
    first = _artifacts("pentium-crash", seed=11)
    second = _artifacts("pentium-crash", seed=11)
    assert first[0] == second[0]          # byte-identical incident log
    assert first[1] == second[1]          # identical event trace hash
    assert first[2] == second[2]          # identical stats snapshot


def test_same_seed_same_per_packet_draws():
    """Per-packet randomness (drop/corrupt/duplicate rolls) too."""
    first = _artifacts("link-flap", seed=5)
    second = _artifacts("link-flap", seed=5)
    assert first == second


def test_different_seeds_different_schedules():
    logs = {seed: _artifacts("pentium-crash", seed)[0] for seed in (0, 1, 2)}
    assert len(set(logs.values())) == 3


def test_different_seeds_different_packet_faults():
    assert _artifacts("link-flap", 0) != _artifacts("link-flap", 9)


def test_seed_is_recorded_in_the_artifact():
    result = run_campaign("i2o-storm", seed=13, window=WINDOW, warmup=WARMUP)[0]
    assert result.seed == 13
    assert '"seed": 13' in result.incident_log_json()


def test_idle_injector_matches_no_injector():
    """An attached injector with nothing armed draws no randomness and
    perturbs nothing: stats equal a run without the subsystem at all."""

    def run(attach):
        router = Router(RouterConfig(num_ports=2))
        router.add_route("10.0.0.0", 16, 0)
        router.add_route("10.1.0.0", 16, 1)
        from repro.net.traffic import flow_stream, take

        packets = take(flow_stream(50, src="192.168.1.2", src_port=5001,
                                   out_port=1, payload_len=6), 50)
        router.warm_route_cache([p.ip.dst for p in packets])
        if attach:
            router.enable_faults(seed=0)
        router.inject(0, iter(packets))
        router.run(WINDOW)
        return router.sim._events_processed, router.stats()

    assert run(False) == run(True)
