"""Unit tests for the fault-injection subsystem and its recovery
mechanisms (docs/robustness.md).

The campaign-level invariants live in ``test_faults_campaign.py``; this
file pins the mechanisms one at a time: hook verdicts, rate-plan
validation, link flaps, packet drop/corrupt/duplicate, I2O loss, host
crash-with-restart, the bounded SA->Pentium bridge, and the VRP
watchdog's quarantine bound.
"""

import dataclasses

import pytest

from repro.core.cluster import RouterCluster
from repro.core.forwarder import ForwarderSpec, Where
from repro.core.router import Router, RouterConfig
from repro.core.vrp import RegOps, SramRead, VRPProgram
from repro.faults import (
    NULL_INJECTOR,
    RX_OK,
    FaultInjector,
)
from repro.faults.recovery import OverrunningVRPProgram
from repro.net.traffic import flow_stream, take

FOREVER = 10**9


def booted(num_ports=4):
    router = Router(RouterConfig(num_ports=num_ports))
    for port in range(num_ports):
        router.add_route(f"10.{port}.0.0", 16, port)
    return router


def warm_flow(router, count, src, src_port, in_port, out_port):
    packets = take(flow_stream(count, src=src, src_port=src_port,
                               out_port=out_port, payload_len=6), count)
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(in_port, iter(packets))
    return packets


# -- the null injector and attachment ---------------------------------------------


def test_null_injector_is_the_default_everywhere():
    router = booted()
    assert router.injector is None
    for port in router.ports:
        assert port.injector is NULL_INJECTOR
    assert router.to_pentium.injector is NULL_INJECTOR
    assert router.from_pentium.injector is NULL_INJECTOR
    assert NULL_INJECTOR.enabled is False
    assert NULL_INJECTOR.on_rx(None, None) == RX_OK
    assert NULL_INJECTOR.on_i2o_send(None) is False


def test_enable_faults_attaches_the_whole_hierarchy():
    router = booted()
    injector = router.enable_faults(seed=3)
    assert isinstance(injector, FaultInjector)
    assert injector.enabled is True
    assert router.injector is injector
    for port in router.ports:
        assert port.injector is injector
    assert router.to_pentium.injector is injector
    assert router.from_pentium.injector is injector
    snap = injector.snapshot()
    assert snap["seed"] == 3
    assert snap["incidents"] == 0 and snap["active"] == 0


def test_fault_rate_validation():
    router = booted()
    injector = router.enable_faults()
    with pytest.raises(ValueError):
        injector.schedule_packet_faults(router.ports[0], 0, FOREVER, drop=-0.1)
    with pytest.raises(ValueError):
        injector.schedule_packet_faults(router.ports[0], 0, FOREVER,
                                        drop=0.6, corrupt=0.6)
    with pytest.raises(ValueError):
        injector.schedule_i2o_loss(router.to_pentium, 0, FOREVER, rate=1.5)


# -- satellite: inject() out-of-range diagnostics ---------------------------------


def test_router_inject_out_of_range_names_valid_ports():
    router = booted(num_ports=4)
    with pytest.raises(ValueError, match=r"no port 4: valid ports are 0\.\.3"):
        router.inject(4, iter([]))
    with pytest.raises(ValueError, match=r"no port -1"):
        router.inject(-1, iter([]))


def test_cluster_inject_out_of_range_names_valid_members():
    cluster = RouterCluster(num_routers=2)
    with pytest.raises(ValueError, match=r"no member 2: valid members are 0\.\.1"):
        cluster.inject(2, 0, iter([]))
    with pytest.raises(ValueError, match=r"no port 99"):
        cluster.inject(0, 99, iter([]))


# -- MAC-layer faults -------------------------------------------------------------


def test_link_flap_drops_frames_while_down():
    router = booted()
    injector = router.enable_faults(seed=0)
    injector.schedule_link_flap(router.ports[0], at=1, down_cycles=FOREVER)
    warm_flow(router, 20, "192.168.1.2", 5001, in_port=0, out_port=1)
    router.run(120_000)
    assert len(router.transmitted(1)) == 0
    assert injector.counts["link-drop"] == 20
    assert router.ports[0].stats.counter("rx_fault_dropped").value == 20
    kinds = [i["kind"] for i in injector.log]
    assert "link-down" in kinds and "link-up" not in kinds
    assert injector.active == 1


def test_link_restores_after_flap_window():
    router = booted()
    injector = router.enable_faults(seed=0)
    injector.schedule_link_flap(router.ports[0], at=1, down_cycles=2_000)
    warm_flow(router, 30, "192.168.1.2", 5001, in_port=0, out_port=1)
    router.run(150_000)
    kinds = [i["kind"] for i in injector.log]
    assert kinds.count("link-down") == 1 and kinds.count("link-up") == 1
    assert injector.active == 0
    # Frames kept arriving after restoration and were forwarded.
    assert len(router.transmitted(1)) > 0


def test_drop_rate_one_loses_every_frame_by_name():
    router = booted()
    injector = router.enable_faults(seed=0)
    injector.schedule_packet_faults(router.ports[0], 0, FOREVER, drop=1.0)
    warm_flow(router, 15, "192.168.1.2", 5001, in_port=0, out_port=1)
    router.run(120_000)
    assert len(router.transmitted(1)) == 0
    assert injector.counts["mac-drop"] == 15
    assert router.ports[0].stats.counter("rx_fault_dropped").value == 15


def test_corruption_is_detected_never_transmitted():
    router = booted()
    injector = router.enable_faults(seed=0)
    injector.schedule_packet_faults(router.ports[0], 0, FOREVER, corrupt=1.0)
    warm_flow(router, 12, "192.168.1.2", 5001, in_port=0, out_port=1)
    clean_before = router.stats()["classifier_failures"]
    router.run(120_000)
    stats = router.stats()
    assert injector.counts["mac-corrupt"] == 12
    # Header validation caught every corrupted frame...
    assert stats["classifier_failures"] - clean_before == 12
    # ...and none leaked to any egress port (the silent-corruption invariant).
    assert not any(p.meta.get("fault_corrupted") for p in router.transmitted())


def test_duplicates_forward_but_never_chain():
    router = booted()
    injector = router.enable_faults(seed=0)
    injector.schedule_packet_faults(router.ports[0], 0, FOREVER, duplicate=1.0)
    warm_flow(router, 10, "192.168.1.2", 5001, in_port=0, out_port=1)
    router.run(150_000)
    # Every original duplicated exactly once: a duplicated frame is
    # marked and exempt from further faults, so 10 in -> 20 out, not 2^10.
    assert injector.counts["mac-duplicate"] == 10
    assert len(router.transmitted(1)) == 20


# -- I2O message loss -------------------------------------------------------------


def test_i2o_loss_is_counted_not_silent():
    router = booted()
    injector = router.enable_faults(seed=0)
    injector.schedule_i2o_loss(router.to_pentium, 0, FOREVER, rate=1.0)
    packets = take(flow_stream(25, src="192.168.2.2", src_port=6001,
                               out_port=3, payload_len=6), 25)
    spec = ForwarderSpec(name="pe-unit", where=Where.PE, cycles=1000,
                         expected_pps=50_000.0)
    router.install(packets[0].flow_key(), spec)
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(2, iter(packets))
    router.run(250_000)
    lost = router.to_pentium.messages_lost
    assert lost > 0
    assert lost == injector.counts["i2o-loss"]
    assert router.pentium.processed == 0          # everything vanished in flight
    assert router.strongarm.bridged == lost       # the sender saw success
    # The loss consumed no queue buffers: the pair is not wedged full.
    assert router.to_pentium.occupancy == 0


# -- host crash-with-restart ------------------------------------------------------


def test_pentium_crash_and_restart_lifecycle():
    router = booted()
    injector = router.enable_faults(seed=0)
    injector.schedule_host_crash(router.pentium, at=5_000, restart_after=20_000,
                                 label="pentium")
    packets = take(flow_stream(40, src="192.168.2.2", src_port=6001,
                               out_port=3, payload_len=6), 40)
    spec = ForwarderSpec(name="pe-crash", where=Where.PE, cycles=1000,
                         expected_pps=50_000.0)
    router.install(packets[0].flow_key(), spec)
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(2, iter(packets))
    router.run(400_000)
    pent = router.pentium
    assert pent.crashes == 1 and pent.restarts == 1 and not pent.crashed
    assert pent.processed > 0                      # work resumed after reboot
    kinds = [i["kind"] for i in injector.log]
    assert kinds.index("pentium-crash") < kinds.index("pentium-restart")
    severities = {i["kind"]: i["severity"] for i in injector.log}
    assert severities["pentium-crash"] == "red"
    assert severities["pentium-restart"] == "green"


def test_strongarm_crash_without_restart_stays_down():
    router = booted()
    injector = router.enable_faults(seed=0)
    injector.schedule_host_crash(router.strongarm, at=1, label="strongarm")
    warm_flow(router, 20, "192.168.1.2", 5001, in_port=0, out_port=1)
    router.run(150_000)
    sa = router.strongarm
    assert sa.crashed and sa.crashes == 1 and sa.restarts == 0
    # The MicroEngine fast path never noticed.
    assert len(router.transmitted(1)) == 20


def test_bridge_retries_are_bounded_when_pentium_is_dead():
    """A dead Pentium stops recycling I2O buffers; the SA bridge must
    give up after its retry budget and drop by name, not spin forever."""
    router = booted()
    router.strongarm.params = dataclasses.replace(
        router.strongarm.params, bridge_retry_limit=10,
        bridge_backoff_growth=2.0)
    injector = router.enable_faults(seed=0)
    injector.schedule_host_crash(router.pentium, at=1, label="pentium")
    # More packets than the 64-deep I2O pair: once it fills, every
    # further bridge attempt exhausts the retry budget.
    packets = take(flow_stream(100, src="192.168.2.2", src_port=6001,
                               out_port=3, payload_len=6), 100)
    spec = ForwarderSpec(name="pe-wedge", where=Where.PE, cycles=1000,
                         expected_pps=50_000.0)
    router.install(packets[0].flow_key(), spec)
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(2, iter(packets))
    fast = warm_flow(router, 30, "192.168.1.2", 5001, in_port=0, out_port=1)
    router.run(1_500_000)
    sa = router.strongarm
    assert sa.bridge_dropped > 0
    assert router.stats()["sa_bridge_dropped"] == sa.bridge_dropped
    # Local forwarding survived the wedged bridge...
    assert not sa.crashed
    # ...and so did the fast path.
    assert len(router.transmitted(1)) == len(fast)


# -- VRP watchdog quarantine ------------------------------------------------------


def _liar_spec(overrun_cycles=400):
    program = OverrunningVRPProgram("liar", [RegOps(20), SramRead(2)],
                                    overrun_cycles=overrun_cycles)
    return ForwarderSpec(name="liar", where=Where.ME, program=program)


def test_overrunning_program_fools_admission_but_not_the_clock():
    program = OverrunningVRPProgram("liar", [RegOps(20), SramRead(2)],
                                    overrun_cycles=400)
    honest = VRPProgram("honest", [RegOps(20), SramRead(2)])
    # The verifier's views are identical...
    assert program.cost().cycles == honest.cost().cycles
    assert program.instruction_count() == honest.instruction_count()
    # ...but the compiled code runs 400 extra register cycles per MP.
    assert program.to_timed().reg_cycles == honest.to_timed().reg_cycles + 400


def test_watchdog_quarantines_within_strike_limit():
    router = booted()
    watchdog = router.enable_vrp_watchdog(strike_limit=5)
    packets = take(flow_stream(50, src="192.168.5.2", src_port=9001,
                               out_port=3, payload_len=6), 50)
    fid = router.install(packets[0].flow_key(), _liar_spec())
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(2, iter(packets))
    router.run(200_000)
    assert list(watchdog.quarantined) == [fid]
    incident = watchdog.quarantined[fid]
    assert incident["kind"] == "vrp-quarantine"
    assert incident["forwarder"] == "liar"
    # Quarantine landed after exactly strike_limit matched packets.
    assert incident["packets_matched"] == 5
    # The forwarder is gone from the table; its flow now takes the
    # default IP fast path and packets keep flowing.
    with pytest.raises(KeyError):
        router.flow_table.get(fid)
    assert len(router.transmitted(3)) > incident["packets_matched"]


def test_watchdog_leaves_honest_forwarders_alone():
    router = booted()
    watchdog = router.enable_vrp_watchdog(strike_limit=5)
    packets = take(flow_stream(30, src="192.168.5.2", src_port=9001,
                               out_port=3, payload_len=6), 30)
    program = VRPProgram("honest", [RegOps(20), SramRead(2)])
    router.install(packets[0].flow_key(),
                   ForwarderSpec(name="honest", where=Where.ME, program=program))
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(2, iter(packets))
    router.run(200_000)
    assert watchdog.quarantined == {}
    assert watchdog.strikes == {}
    assert len(router.transmitted(3)) == 30


def test_quarantine_incident_mirrors_into_injector_log():
    router = booted()
    injector = router.enable_faults(seed=0)
    watchdog = router.enable_vrp_watchdog(strike_limit=4)
    packets = take(flow_stream(30, src="192.168.5.2", src_port=9001,
                               out_port=3, payload_len=6), 30)
    router.install(packets[0].flow_key(), _liar_spec())
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(2, iter(packets))
    router.run(200_000)
    assert len(watchdog.quarantined) == 1
    assert injector.counts.get("vrp-quarantine") == 1
    assert any(i["kind"] == "vrp-quarantine" for i in injector.log)
