"""Tests for the additional section-4.4 service forwarders: packet
tagging and token-bucket rate limiting."""

import pytest

from repro import Router
from repro.core.forwarders import packet_tagger, rate_limiter
from repro.core.vrp import PROTOTYPE_BUDGET
from repro.net.addresses import IPv4Address
from repro.net.packet import FlowKey, make_tcp_packet
from repro.net.traffic import flow_stream, take


def test_both_fit_the_vrp_budget():
    for spec in (packet_tagger(tos=0xB8), rate_limiter(rate_pps=1000)):
        ok, reason = PROTOTYPE_BUDGET.check(
            spec.program.cost(), spec.program.registers_needed
        )
        assert ok, f"{spec.name}: {reason}"


def test_tagger_stamps_tos():
    spec = packet_tagger(tos=0xB8)  # DSCP EF
    state = dict(spec.initial_state)
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2")
    assert spec.program.action(packet, state)
    assert packet.ip.tos == 0xB8
    assert state["tagged"] == 1


def test_tagger_inactive_without_state():
    packet = make_tcp_packet("1.1.1.1", "2.2.2.2")
    assert packet_tagger().program.action(packet, {})
    assert packet.ip.tos == 0


def test_tagger_validates_tos():
    with pytest.raises(ValueError):
        packet_tagger(tos=300)


def test_rate_limiter_passes_within_rate():
    spec = rate_limiter(rate_pps=1000, burst=4)
    state = dict(spec.initial_state)
    action = spec.program.action
    # Packets spaced exactly at the rate (200k cycles at 200 MHz = 1 ms).
    for i in range(10):
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2")
        packet.meta["t_arrived"] = i * 200_000
        assert action(packet, state), f"packet {i} wrongly limited"
    assert state["passed"] == 10


def test_rate_limiter_drops_burst_beyond_bucket():
    spec = rate_limiter(rate_pps=1000, burst=3)
    state = dict(spec.initial_state)
    action = spec.program.action
    results = []
    for i in range(8):  # all at the same instant: only the burst passes
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2")
        packet.meta["t_arrived"] = 1000
        results.append(action(packet, state))
    assert results[:3] == [True, True, True]
    assert not any(results[3:])
    assert state["limited"] == 5


def test_rate_limiter_refills_over_time():
    spec = rate_limiter(rate_pps=1000, burst=1)
    state = dict(spec.initial_state)
    action = spec.program.action
    first = make_tcp_packet("1.1.1.1", "2.2.2.2")
    first.meta["t_arrived"] = 0
    assert action(first, state)
    starved = make_tcp_packet("1.1.1.1", "2.2.2.2")
    starved.meta["t_arrived"] = 1000  # far too soon
    assert not action(starved, state)
    later = make_tcp_packet("1.1.1.1", "2.2.2.2")
    later.meta["t_arrived"] = 500_000  # 2.5 ms later: refilled
    assert action(later, state)


def test_rate_limiter_validation():
    with pytest.raises(ValueError):
        rate_limiter(rate_pps=-1)
    with pytest.raises(ValueError):
        rate_limiter(rate_pps=10, burst=0)


def test_rate_limiter_in_router_enforces_flow_rate():
    """End to end: a flow limited to ~2 Kpps through the router."""
    router = Router()
    for port in range(10):
        router.add_route(f"10.{port}.0.0", 16, port)
    key = FlowKey(IPv4Address("192.168.1.2"), 5001, IPv4Address("10.1.0.1"), 80)
    fid = router.install(key, rate_limiter(rate_pps=2000, burst=2))
    # 40 packets at ~74 Kpps offered (100 Mbps of min packets).
    packets = take(flow_stream(40, out_port=1, payload_len=6), 40)
    router.warm_route_cache([packets[0].ip.dst])
    router.inject(0, iter(packets))
    router.run(1_500_000)
    data = router.getdata(fid)
    delivered = len(router.transmitted(1))
    assert delivered == data["passed"]
    assert data["limited"] > 0
    # ~2 Kpps over 40 x 1344-cycle arrivals (~0.27 ms) plus burst: only a
    # handful pass.
    assert delivered <= 5
    assert router.stats()["vrp_dropped"] == data["limited"]


def test_tagger_in_router_marks_flow():
    router = Router()
    for port in range(10):
        router.add_route(f"10.{port}.0.0", 16, port)
    key = FlowKey(IPv4Address("192.168.1.2"), 5001, IPv4Address("10.1.0.1"), 80)
    fid = router.install(key, packet_tagger(tos=0x28))
    packets = take(flow_stream(5, out_port=1, payload_len=6), 5)
    other = take(flow_stream(3, src="10.9.9.9", src_port=42, out_port=2, payload_len=6), 3)
    router.warm_route_cache([p.ip.dst for p in packets + other])
    router.inject(0, iter(packets + other))
    router.run(1_200_000)
    assert all(p.ip.tos == 0x28 for p in router.transmitted(1))
    assert all(p.ip.tos == 0 for p in router.transmitted(2))
    assert router.getdata(fid)["tagged"] == 5
