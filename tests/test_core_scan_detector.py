"""Tests for the intrusion-detection service pair (section 4.4)."""


from repro import ALL, Router
from repro.core.forwarders.scan_detector import PORT_BUCKETS, ScanResponder, make_spec
from repro.core.vrp import PROTOTYPE_BUDGET
from repro.net.packet import make_tcp_packet
from repro.net.traffic import flow_stream, take


def test_detector_fits_vrp_budget():
    spec = make_spec()
    ok, reason = PROTOTYPE_BUDGET.check(spec.program.cost(), spec.program.registers_needed)
    assert ok, reason
    assert spec.program.cost().hashes <= 3  # within the hash budget too


def test_detector_builds_bitmap():
    spec = make_spec()
    state = dict(spec.initial_state)
    action = spec.program.action
    for port in (22, 23, 80, 443, 8080):
        action(make_tcp_packet("6.6.6.6", "10.1.0.1", dst_port=port), state)
    assert state["probes"] == 5
    assert bin(state["bitmap"]).count("1") >= 4  # distinct buckets touched


def test_detector_tracks_only_configured_source():
    spec = make_spec(track_src="6.6.6.6")
    state = dict(spec.initial_state)
    action = spec.program.action
    action(make_tcp_packet("6.6.6.6", "10.1.0.1", dst_port=22), state)
    action(make_tcp_packet("7.7.7.7", "10.1.0.1", dst_port=23), state)
    assert state["probes"] == 1


def test_single_service_flow_does_not_alert():
    """A busy but legitimate flow touches one bucket: no alert."""
    router = Router()
    for port in range(10):
        router.add_route(f"10.{port}.0.0", 16, port)
    fid = router.install(ALL, make_spec())
    responder = ScanResponder(router, fid)
    packets = take(flow_stream(30, out_port=1, dst_port=80, payload_len=6), 30)
    router.warm_route_cache([packets[0].ip.dst])
    router.inject(0, iter(packets))
    router.run(900_000)
    assert not responder.poll()
    assert responder.filter_fid is None


def test_scan_detected_and_filter_installed():
    """A port sweep trips the detector; the responder installs the
    filter; a second sweep is dropped in the data plane."""
    router = Router()
    for port in range(10):
        router.add_route(f"10.{port}.0.0", 16, port)
    fid = router.install(ALL, make_spec())
    responder = ScanResponder(router, fid)

    def sweep(start):
        for i in range(PORT_BUCKETS):
            yield make_tcp_packet("6.6.6.6", "10.1.0.1", dst_port=start + i,
                                  src_port=40000 + i)

    first = list(sweep(1))
    router.warm_route_cache([first[0].ip.dst])
    router.inject(0, iter(first))
    router.run(900_000)
    assert responder.poll()
    assert responder.filter_fid is not None
    delivered_before = len(router.transmitted(1))

    router.inject(1, sweep(100))
    router.run(900_000)
    # The second sweep died in the data plane.
    assert len(router.transmitted(1)) == delivered_before
    assert router.getdata(responder.filter_fid)["filtered"] == PORT_BUCKETS
