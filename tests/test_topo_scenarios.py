"""Golden-number assertions for the three topology scenarios at seed 7.

Each scenario is run once (default window) and checked three ways:

* its own invariants all hold (the scenario is the network-wide
  verification suite -- a red invariant is a real regression);
* headline golden numbers stay pinned: reconvergence bounded by the
  horizon, every lost packet accounted to a named drop counter, the
  incident log complete (every logged-kind count has its log entry --
  no truncation);
* the full incident-log artifact is byte-diffed against the committed
  golden under ``tests/goldens/`` -- any behavior change must be
  re-goldened deliberately, with the diff in the review.
"""

import pathlib

import pytest

from repro.topo.network import LOGGED_KINDS
from repro.topo.scenarios import RECONVERGE_HORIZON, run_topo

GOLDENS = pathlib.Path(__file__).parent / "goldens"
SEED = 7


@pytest.fixture(scope="module")
def results():
    runs = run_topo("all", seed=SEED)
    return {r.scenario: r for r in runs}


def _golden_name(scenario):
    return f"topo_{scenario.replace('-', '_')}_seed{SEED}.json"


# ---------------------------------------------------------------------------
# Scenario-specific golden numbers.
# ---------------------------------------------------------------------------

def test_link_failure_invariants_green(results):
    r = results["link-failure"]
    assert r.ok, [i for i in r.invariants if not i["ok"]]


def test_link_failure_reconvergence_bounded(results):
    r = results["link-failure"]
    assert len(r.reconvergences) == 1
    reconv = r.reconvergences[0]["cycles"]
    assert 0 < reconv <= RECONVERGE_HORIZON
    # The ring reroutes: the alternate path carried data after the cut.
    rerouted = {i["name"]: i for i in r.invariants}["rerouted-to-alternate-path"]
    assert rerouted["ok"], rerouted["detail"]


def test_route_churn_every_flap_reconverges(results):
    r = results["route-churn"]
    assert r.ok, [i for i in r.invariants if not i["ok"]]
    # 4 flaps x (down + restore) = 8 completed reconvergence episodes.
    assert len(r.reconvergences) == 8
    assert all(0 < e["cycles"] <= RECONVERGE_HORIZON for e in r.reconvergences)


def test_congestion_collapse_is_observed_and_isolated(results):
    r = results["congestion-collapse"]
    assert r.ok, [i for i in r.invariants if not i["ok"]]
    inv = {i["name"]: i for i in r.invariants}
    assert inv["collapse-observed"]["ok"]
    assert inv["disjoint-flow-isolated"]["ok"]


# ---------------------------------------------------------------------------
# Cross-scenario conservation and completeness.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scenario",
                         ["link-failure", "route-churn", "congestion-collapse"])
def test_all_drops_accounted(results, scenario):
    """Conservation: sent = delivered + icmp-consumed + named drops
    (+ a bounded snapshot residual, asserted by the scenario itself)."""
    r = results[scenario]
    acct = r.accounting
    accounted = {i["name"]: i for i in r.invariants}["all-drops-accounted"]
    assert accounted["ok"], accounted["detail"]
    assert acct["sent"] > 0 and acct["delivered"] > 0
    assert acct["misdelivered"] == 0


@pytest.mark.parametrize("scenario",
                         ["link-failure", "route-churn", "congestion-collapse"])
def test_incident_log_not_truncated(results, scenario):
    """Every counted logged-kind incident has its log entry: the merged
    log across all nodes loses nothing."""
    r = results[scenario]
    logged = [i for i in r.incidents if i["kind"] in LOGGED_KINDS]
    counted = sum(r.fault_counts.get(kind, 0) for kind in LOGGED_KINDS)
    assert len(logged) == counted


# ---------------------------------------------------------------------------
# Golden artifact diff.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scenario",
                         ["link-failure", "route-churn", "congestion-collapse"])
def test_incident_log_matches_committed_golden(results, scenario):
    golden = GOLDENS / _golden_name(scenario)
    expected = golden.read_text()
    actual = results[scenario].incident_log_json() + "\n"
    assert actual == expected, (
        f"{golden.name} drifted -- if the change is intended, regenerate "
        f"with: PYTHONPATH=src python -m repro topo {scenario} --seed {SEED} "
        f"--incidents-out tests/goldens/{golden.name}"
    )
