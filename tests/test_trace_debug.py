"""Tests for trace capture/replay and the pipeline profiler."""

import io

import pytest

from repro import Router
from repro.ixp.debug import format_timeline, latency_report, stage_breakdown, stamps_of, total_latency
from repro.net.trace import TraceCapture, TraceRecord, load_trace, replay, save_trace
from repro.net.traffic import flow_stream, take, uniform_flood


def booted():
    router = Router()
    for port in range(10):
        router.add_route(f"10.{port}.0.0", 16, port)
    return router


# -- trace format -----------------------------------------------------------------


def make_records(n=5):
    packets = take(uniform_flood(n, num_ports=4), n)
    return [
        TraceRecord(timestamp=i * 1000, port=i % 3, frame=p.to_bytes())
        for i, p in enumerate(packets)
    ]


def test_trace_roundtrip_in_memory():
    records = make_records()
    buffer = io.BytesIO()
    assert save_trace(buffer, records) == 5
    buffer.seek(0)
    loaded = load_trace(buffer)
    assert loaded == records


def test_trace_roundtrip_on_disk(tmp_path):
    path = str(tmp_path / "flows.rprt")
    records = make_records(3)
    save_trace(path, records)
    assert load_trace(path) == records


def test_trace_record_parses_packet():
    record = make_records(1)[0]
    packet = record.parse()
    assert packet.arrival_port == record.port
    assert packet.to_bytes() == record.frame


def test_trace_rejects_garbage():
    with pytest.raises(ValueError):
        load_trace(io.BytesIO(b"NOPE" + b"\x00" * 10))
    with pytest.raises(ValueError):
        load_trace(io.BytesIO(b""))
    good = io.BytesIO()
    save_trace(good, make_records(2))
    truncated = io.BytesIO(good.getvalue()[:-5])
    with pytest.raises(ValueError):
        load_trace(truncated)


def test_replay_delivers_at_recorded_times():
    router = booted()
    packets = take(uniform_flood(4, num_ports=2), 4)
    router.warm_route_cache([p.ip.dst for p in packets])
    records = [
        TraceRecord(timestamp=20_000 * i, port=4, frame=p.to_bytes())
        for i, p in enumerate(packets)
    ]
    replay(router, records)
    router.run(900_000)
    out = router.transmitted()
    assert len(out) == 4
    arrivals = sorted(p.meta["t_arrived"] for p in out)
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert all(abs(g - 20_000) < 500 for g in gaps)


def test_capture_records_egress():
    router = booted()
    capture = TraceCapture(router.sim, [router.ports[1]])
    packets = take(flow_stream(5, out_port=1, payload_len=6), 5)
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(0, iter(packets))
    router.run(900_000)
    assert len(capture) == 5
    assert all(r.port == 1 for r in capture.records)
    times = [r.timestamp for r in capture.records]
    assert times == sorted(times)
    # Captured frames parse back into the (TTL-decremented) packets.
    parsed = capture.records[0].parse()
    assert parsed.ip.ttl == 63


def test_capture_save(tmp_path):
    router = booted()
    capture = TraceCapture(router.sim, router.ports)
    packets = take(uniform_flood(4, num_ports=4), 4)
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(9, iter(packets))
    router.run(900_000)
    path = str(tmp_path / "egress.rprt")
    assert capture.save(path) == 4
    assert len(load_trace(path)) == 4


# -- pipeline profiler ---------------------------------------------------------------


def forwarded_packets():
    router = booted()
    packets = take(uniform_flood(6, num_ports=3), 6)
    router.warm_route_cache([p.ip.dst for p in packets])
    router.inject(9, iter(packets))
    router.run(900_000)
    return router.transmitted()


def test_milestones_recorded_in_order():
    for packet in forwarded_packets():
        stamps = dict(stamps_of(packet))
        assert "MAC arrival" in stamps
        assert "classified" in stamps
        assert "enqueued" in stamps
        assert "transmitted" in stamps
        assert stamps["MAC arrival"] <= stamps["classified"] <= stamps["enqueued"] <= stamps["transmitted"]


def test_latency_report_statistics():
    packets = forwarded_packets()
    report = latency_report(packets)
    assert report["count"] == len(packets)
    assert 0 < report["min_cycles"] <= report["p50_cycles"] <= report["max_cycles"]
    assert report["mean_us"] > 0


def test_latency_report_empty():
    assert latency_report([]) == {"count": 0}


def test_exceptional_packet_timeline_includes_strongarm():
    router = booted()
    packets = take(uniform_flood(2, num_ports=1), 2)  # cold cache -> SA
    router.inject(9, iter(packets))
    router.run(2_000_000)
    out = router.transmitted()
    assert out
    stamps = dict(stamps_of(out[0]))
    assert "StrongARM" in stamps
    text = format_timeline(out[0])
    assert "StrongARM" in text and "transmitted" in text


def test_stage_breakdown_keys():
    packets = forwarded_packets()
    breakdown = stage_breakdown(packets)
    assert "MAC arrival -> classified" in breakdown
    assert all(v >= 0 for v in breakdown.values())


def test_total_latency_none_without_stamps():
    from repro.net.packet import make_tcp_packet

    assert total_latency(make_tcp_packet("1.1.1.1", "2.2.2.2")) is None
    text = format_timeline(make_tcp_packet("1.1.1.1", "2.2.2.2"))
    assert "no milestones" in text
