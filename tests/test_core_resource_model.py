"""Tests for the section 3.5.2 resource model."""

import pytest

from repro.core.resource_model import (
    MAX_INPUT_CONTEXTS,
    evaluation_board_partition,
    plan,
)
from repro.net.mac import PortSpeed


def test_eight_fast_ports_matches_paper_partition():
    """The paper's own configuration: 8 x 100 Mbps wants a comfortable
    input stage and leaves the 240-cycle VRP budget."""
    partition = evaluation_board_partition()
    assert partition.feasible
    assert partition.line_rate_pps == pytest.approx(1.19e6, rel=0.01)
    # Two contexts per port, as in the prototype.
    for port in range(8):
        assert len(partition.contexts_for_port(port)) == 2
    assert partition.input_contexts == 16
    assert partition.vrp_budget.cycles == pytest.approx(240, abs=30)


def test_same_port_contexts_maximally_spaced():
    """The paper: 'we assign ports to contexts in such a way that the two
    contexts servicing the same port are as far apart as possible in the
    token rotation'."""
    partition = evaluation_board_partition()
    # 16 contexts, 2 per port -> the best possible distance is 8.
    assert partition.min_same_port_token_distance() == 8


def test_single_gigabit_port_is_infeasible():
    """1 Gbps of minimum-sized packets (1.49 Mpps) exceeds what the input
    envelope can take through one port's contexts... but is under the
    aggregate envelope, so it plans with a warning-free partition."""
    partition = plan([PortSpeed.GBPS_1])
    assert partition.line_rate_pps == pytest.approx(1.49e6, rel=0.01)
    assert partition.input_contexts >= 7


def test_mixed_board_exceeds_envelope():
    """The full evaluation board (8x100M + 2x1G = 4.1 Mpps of minimum
    packets) is beyond the 16-context input envelope; the model says so."""
    partition = plan([PortSpeed.MBPS_100] * 8 + [PortSpeed.GBPS_1] * 2)
    assert not partition.feasible
    assert any("envelope" in p for p in partition.problems)


def test_heterogeneous_weighting():
    """A gigabit port among fast-Ethernet ports receives proportionally
    more contexts."""
    partition = plan([PortSpeed.GBPS_1, PortSpeed.MBPS_100, PortSpeed.MBPS_100])
    gig = len(partition.contexts_for_port(0))
    fast = len(partition.contexts_for_port(1))
    assert gig > 3 * fast
    assert fast >= 1


def test_headroom_scales_provisioning():
    base = plan([PortSpeed.MBPS_100] * 4)
    padded = plan([PortSpeed.MBPS_100] * 4, headroom=2.0)
    assert padded.line_rate_pps == pytest.approx(2 * base.line_rate_pps)
    assert padded.vrp_budget.cycles < base.vrp_budget.cycles


def test_more_ports_than_contexts_degrades_gracefully():
    partition = plan([PortSpeed.MBPS_100] * 20)
    assert not partition.feasible
    assert any("share contexts" in p for p in partition.problems)


def test_vrp_budget_shrinks_with_line_rate():
    slow = plan([PortSpeed.MBPS_100] * 2)
    fast = plan([PortSpeed.MBPS_100] * 8)
    assert slow.vrp_budget.cycles > fast.vrp_budget.cycles


def test_empty_configuration_rejected():
    with pytest.raises(ValueError):
        plan([])


def test_summary_is_readable():
    text = evaluation_board_partition().summary()
    assert "line rate" in text and "VRP budget" in text


def test_fifo_slots_match_contexts():
    partition = evaluation_board_partition()
    assert len(set(partition.fifo_slot_of_context.values())) == partition.input_contexts
    assert all(0 <= s < MAX_INPUT_CONTEXTS for s in partition.fifo_slot_of_context.values())
