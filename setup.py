"""Legacy setup shim.

The environment this project targets has no network access and no ``wheel``
package, so PEP 517 editable installs fail; this shim lets
``pip install -e .`` fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
